"""Parallel sweep execution for the paper's grid experiments.

The paper's headline artifacts are grids of independent (ENOB, Nmult,
filter) points — embarrassingly parallel work the original authors
spread over seven V100s.  This subpackage supplies the process-pool
equivalent for the numpy reproduction:

- :mod:`~repro.parallel.scheduler` — cache-aware planning: shared
  trained artifacts are topologically ordered into a serial prelude so
  dependents fan out against a warm cache.
- :mod:`~repro.parallel.runner` — a generic, order-preserving
  process-pool mapper (``jobs=1`` degenerates to a plain loop).
- :mod:`~repro.parallel.sweep` — the Workbench-aware glue the
  experiment modules use (``sweep_map``).

Determinism contract: every task derives its randomness from explicit
seeds in the experiment config, so parallel results are bit-identical
to serial ones (tested in ``tests/integration/
test_parallel_determinism.py``).
"""

from repro.parallel.runner import SweepRunner, start_method
from repro.parallel.scheduler import (
    Artifact,
    SweepPoint,
    SweepSchedule,
    plan,
    topo_order,
)
from repro.parallel.sweep import sweep_map

__all__ = [
    "Artifact",
    "SweepPoint",
    "SweepSchedule",
    "SweepRunner",
    "plan",
    "start_method",
    "sweep_map",
    "topo_order",
]
