"""Workbench-aware parallel sweep execution.

:func:`sweep_map` is what the experiment modules call to evaluate a
grid of independent points (ENOB values, freeze groups, layer indices):

1. The :mod:`~repro.parallel.scheduler` plans a serial *prelude* of
   shared artifacts (trained baselines), which is built once in the
   parent process so the disk cache is warm before any fan-out.
2. With ``bench.jobs <= 1`` every point runs in the calling process on
   the caller's own workbench — byte-for-byte the behaviour of the old
   serial loops.
3. With ``bench.jobs > 1`` the points fan out over a process pool.
   Each worker constructs its own :class:`~repro.experiments.common.
   Workbench` from the (picklable) experiment config once, then serves
   points from it.  Because every stochastic input is derived
   deterministically from the config (data generation, weight init,
   per-point noise seeds) and shared models are loaded from the warmed
   cache, the results are bit-identical to the serial run regardless of
   worker count or completion order.

Point functions must be module-level functions of signature
``fn(bench, *args, **kwargs)`` returning picklable values.

**Failure contract.**  A point that raises does not abort the sweep
mid-grid (the old behaviour: ``pool.map`` re-raised the first worker
exception and every other point's outcome — done or not — was thrown
away).  Instead each point's exception is captured with its traceback,
every remaining point still runs, the failures are journaled as
``sweep.point_failed`` events, and :func:`sweep_map` then raises
:class:`~repro.errors.SweepError` carrying all ``(key, traceback)``
pairs — which the CLI turns into a non-zero exit.  Completed points
are journaled as ``sweep.point_done`` with their result payloads, so a
partially-failed sweep is fully reconstructible from its run journal.

**Fault tolerance** (see ``docs/fault_tolerance.md``).  When a run
journal is active, every completed point's value is also persisted
under ``<run_dir>/sweep/<ordinal>/``; ``bench.resume_run`` (set by the
CLI's ``--resume <run_id>``) replays the old run's journal, reuses
those values (journaled as ``sweep.point_skipped``), and re-executes
only failed/missing points.  A worker process that dies mid-point is
retried with backoff (``bench.retries`` / ``bench.retry_backoff``,
journaled as ``sweep.point_retry``); retries exhausted become an
ordinary failed point.  A pending SIGINT/SIGTERM is honored between
points on the serial path (``run.interrupted`` +
:class:`~repro.errors.RunInterrupted`), after the current round on the
pooled path.
"""

from __future__ import annotations

import traceback as _traceback
from time import perf_counter
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

from repro.ckpt.resume import load_sweep_results, store_sweep_result
from repro.ckpt.signals import interrupt_requested
from repro.errors import RunInterrupted, SweepError
from repro.obs.journal import current_journal, journal_event, to_jsonable
from repro.obs.metrics import default_registry
from repro.obs.trace import span
from repro.parallel.runner import SweepRunner
from repro.parallel.scheduler import Artifact, SweepPoint, plan

#: Worker-process-local workbench, built once by :func:`_init_worker`.
_WORKER_BENCH = None

#: Default extra attempts for a point whose worker process died.
DEFAULT_RETRIES = 2

#: Default base backoff (seconds) between such attempts.
DEFAULT_BACKOFF_S = 0.5


def _init_worker(config) -> None:
    global _WORKER_BENCH
    from repro.experiments.common import Workbench
    from repro.obs.deprecation import mark_worker_process

    # The parent process owns user-facing deprecation warnings; a pool
    # worker re-warning N times over is pure noise.
    mark_worker_process()
    _WORKER_BENCH = Workbench(config)


def _call_point(fn, bench, point: SweepPoint, index: int) -> Tuple:
    """Run one point, capturing any exception as a status tuple.

    Returns ``(status, index, key, value, seconds, traceback_text)``
    with ``status`` in ``{"ok", "failed"}`` — picklable either way, so
    a worker failure travels back to the parent instead of poisoning
    the pool.
    """
    started = perf_counter()
    try:
        value = fn(bench, *point.args, **point.kwargs)
    except Exception:  # noqa: BLE001 - the parent re-raises as SweepError
        return (
            "failed",
            index,
            point.key,
            None,
            perf_counter() - started,
            _traceback.format_exc(),
        )
    return ("ok", index, point.key, value, perf_counter() - started, None)


def _run_point(task):
    fn, point, index = task
    return _call_point(fn, _WORKER_BENCH, point, index)


def _lost_point(task_index: int, task) -> Tuple:
    """Stand-in outcome for a point whose worker died beyond retries."""
    _, point, index = task
    return (
        "failed",
        index,
        point.key,
        None,
        0.0,
        "WorkerLostError: worker process died while running this point "
        "and retries were exhausted (OOM kill? see docs/"
        "fault_tolerance.md for the retry knobs)\n",
    )


def _resume_skips(bench, points: Sequence[SweepPoint], ordinal: int) -> dict:
    """``{index: value}`` for points reusable from ``bench.resume_run``.

    A stored point is reused only when its journaled key matches the
    current grid's key at that index — a changed grid re-runs.
    """
    source = getattr(bench, "resume_run", None)
    if not source:
        return {}
    results_dir = getattr(bench.config, "results_dir", "results")
    stored = load_sweep_results(source, results_dir, ordinal)
    skips = {}
    for index, point in enumerate(points):
        if index in stored:
            key, value = stored[index]
            if key == to_jsonable(point.key):
                skips[index] = value
    journal_event("sweep.resume", source_run=source, reused=len(skips))
    return skips


def _drain_if_requested(completed: int) -> None:
    signal_name = interrupt_requested()
    if signal_name is not None:
        journal_event(
            "run.interrupted",
            signal=signal_name,
            phase="sweep",
            completed=completed,
        )
        raise RunInterrupted(
            f"sweep drained after {completed} point(s) on {signal_name}; "
            "re-run with --resume <run_id> to finish the grid",
            signal_name=signal_name,
        )


def sweep_map(
    bench,
    fn: Callable,
    points: Sequence[SweepPoint],
    artifacts: Optional[Mapping[str, Artifact]] = None,
) -> List:
    """Evaluate ``fn(bench, *point.args, **point.kwargs)`` per point.

    Results are returned in point order.  See the module docstring for
    the serial/parallel execution contract, the failure contract (all
    points always run; any failures surface afterwards as one
    :class:`~repro.errors.SweepError`), and the fault-tolerance
    contract (resume / retry / drain).
    """
    schedule = plan(points, artifacts or {})
    with span("sweep.prelude"):
        for name in schedule.prelude:
            artifacts[name].build(bench)

    jobs = getattr(bench, "jobs", 1)
    registry = default_registry()
    journal = current_journal()
    ordinal = journal.next_sweep_ordinal() if journal is not None else 0
    journal_event("sweep.start", points=len(schedule.points))
    registry.gauge("sweep.jobs").set(max(jobs, 1))

    skips = _resume_skips(bench, schedule.points, ordinal)
    todo = [
        (index, point)
        for index, point in enumerate(schedule.points)
        if index not in skips
    ]

    def _journal_retry(runner_index, task, attempt, delay):
        _, point, index = task
        registry.counter("sweep.points_retried").inc()
        journal_event(
            "sweep.point_retry",
            index=index,
            key=to_jsonable(point.key),
            attempt=attempt,
            delay_s=delay,
        )

    results: List = [None] * len(schedule.points)
    failures: List[Tuple[str, str]] = []

    def _record(outcome) -> None:
        """Journal + persist one outcome the moment it is known.

        Recording eagerly (not after the whole grid) is what makes a
        drained or crashed sweep resumable: every point finished before
        the interruption is already on disk.
        """
        status, index, key, value, seconds, tb_text = outcome
        if status == "ok":
            results[index] = value
            registry.counter("sweep.points_completed").inc()
            registry.histogram("sweep.point_seconds").observe(seconds)
            journal_event(
                "sweep.point_done",
                index=index,
                key=to_jsonable(key),
                seconds=seconds,
                result=to_jsonable(value),
            )
            if journal is not None:
                store_sweep_result(
                    journal.run_dir, ordinal, index, to_jsonable(key), value
                )
        else:
            failures.append((str(key), tb_text))
            registry.counter("sweep.points_failed").inc()
            error_line = tb_text.strip().splitlines()[-1]
            journal_event(
                "sweep.point_failed",
                index=index,
                key=to_jsonable(key),
                error=error_line,
                traceback=tb_text,
            )

    for index, value in skips.items():
        results[index] = value
        key = to_jsonable(schedule.points[index].key)
        registry.counter("sweep.points_skipped").inc()
        journal_event("sweep.point_skipped", index=index, key=key)
        if journal is not None:
            store_sweep_result(journal.run_dir, ordinal, index, key, value)

    with span("sweep.points"):
        if jobs <= 1:
            completed = len(skips)
            for index, point in todo:
                _drain_if_requested(completed=completed)
                _record(_call_point(fn, bench, point, index))
                completed += 1
        else:
            runner = SweepRunner(
                jobs=jobs,
                initializer=_init_worker,
                initargs=(bench.config,),
                retries=getattr(bench, "retries", DEFAULT_RETRIES),
                backoff_s=getattr(bench, "retry_backoff", DEFAULT_BACKOFF_S),
                on_retry=_journal_retry,
                on_lost=_lost_point,
            )
            tasks = [(fn, point, index) for index, point in todo]
            for outcome in runner.map(_run_point, tasks):
                _record(outcome)

    journal_event(
        "sweep.end",
        completed=len(schedule.points) - len(failures),
        failed=len(failures),
    )
    if failures:
        raise SweepError(
            f"{len(failures)} of {len(schedule.points)} sweep points "
            f"failed: {', '.join(key for key, _ in failures)}",
            failures=failures,
        )
    return results
