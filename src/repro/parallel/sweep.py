"""Workbench-aware parallel sweep execution.

:func:`sweep_map` is what the experiment modules call to evaluate a
grid of independent points (ENOB values, freeze groups, layer indices):

1. The :mod:`~repro.parallel.scheduler` plans a serial *prelude* of
   shared artifacts (trained baselines), which is built once in the
   parent process so the disk cache is warm before any fan-out.
2. With ``bench.jobs <= 1`` every point runs in the calling process on
   the caller's own workbench — byte-for-byte the behaviour of the old
   serial loops.
3. With ``bench.jobs > 1`` the points fan out over a process pool.
   Each worker constructs its own :class:`~repro.experiments.common.
   Workbench` from the (picklable) experiment config once, then serves
   points from it.  Because every stochastic input is derived
   deterministically from the config (data generation, weight init,
   per-point noise seeds) and shared models are loaded from the warmed
   cache, the results are bit-identical to the serial run regardless of
   worker count or completion order.

Point functions must be module-level functions of signature
``fn(bench, *args, **kwargs)`` returning picklable values.

**Failure contract.**  A point that raises does not abort the sweep
mid-grid (the old behaviour: ``pool.map`` re-raised the first worker
exception and every other point's outcome — done or not — was thrown
away).  Instead each point's exception is captured with its traceback,
every remaining point still runs, the failures are journaled as
``sweep.point_failed`` events, and :func:`sweep_map` then raises
:class:`~repro.errors.SweepError` carrying all ``(key, traceback)``
pairs — which the CLI turns into a non-zero exit.  Completed points
are journaled as ``sweep.point_done`` with their result payloads, so a
partially-failed sweep is fully reconstructible from its run journal.
"""

from __future__ import annotations

import traceback as _traceback
from time import perf_counter
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SweepError
from repro.obs.journal import journal_event, to_jsonable
from repro.obs.metrics import default_registry
from repro.obs.trace import span
from repro.parallel.runner import SweepRunner
from repro.parallel.scheduler import Artifact, SweepPoint, plan

#: Worker-process-local workbench, built once by :func:`_init_worker`.
_WORKER_BENCH = None


def _init_worker(config) -> None:
    global _WORKER_BENCH
    from repro.experiments.common import Workbench

    _WORKER_BENCH = Workbench(config)


def _call_point(fn, bench, point: SweepPoint, index: int) -> Tuple:
    """Run one point, capturing any exception as a status tuple.

    Returns ``(status, index, key, value, seconds, traceback_text)``
    with ``status`` in ``{"ok", "failed"}`` — picklable either way, so
    a worker failure travels back to the parent instead of poisoning
    the pool.
    """
    started = perf_counter()
    try:
        value = fn(bench, *point.args, **point.kwargs)
    except Exception:  # noqa: BLE001 - the parent re-raises as SweepError
        return (
            "failed",
            index,
            point.key,
            None,
            perf_counter() - started,
            _traceback.format_exc(),
        )
    return ("ok", index, point.key, value, perf_counter() - started, None)


def _run_point(task):
    fn, point, index = task
    return _call_point(fn, _WORKER_BENCH, point, index)


def sweep_map(
    bench,
    fn: Callable,
    points: Sequence[SweepPoint],
    artifacts: Optional[Mapping[str, Artifact]] = None,
) -> List:
    """Evaluate ``fn(bench, *point.args, **point.kwargs)`` per point.

    Results are returned in point order.  See the module docstring for
    the serial/parallel execution contract and the failure contract
    (all points always run; any failures surface afterwards as one
    :class:`~repro.errors.SweepError`).
    """
    schedule = plan(points, artifacts or {})
    with span("sweep.prelude"):
        for name in schedule.prelude:
            artifacts[name].build(bench)

    jobs = getattr(bench, "jobs", 1)
    registry = default_registry()
    journal_event("sweep.start", points=len(schedule.points))
    registry.gauge("sweep.jobs").set(max(jobs, 1))
    with span("sweep.points"):
        if jobs <= 1:
            outcomes = [
                _call_point(fn, bench, point, index)
                for index, point in enumerate(schedule.points)
            ]
        else:
            runner = SweepRunner(
                jobs=jobs, initializer=_init_worker, initargs=(bench.config,)
            )
            tasks = [
                (fn, point, index)
                for index, point in enumerate(schedule.points)
            ]
            outcomes = runner.map(_run_point, tasks)

    results: List = [None] * len(schedule.points)
    failures: List[Tuple[str, str]] = []
    for status, index, key, value, seconds, tb_text in outcomes:
        if status == "ok":
            results[index] = value
            registry.counter("sweep.points_completed").inc()
            registry.histogram("sweep.point_seconds").observe(seconds)
            journal_event(
                "sweep.point_done",
                index=index,
                key=to_jsonable(key),
                seconds=seconds,
                result=to_jsonable(value),
            )
        else:
            failures.append((str(key), tb_text))
            registry.counter("sweep.points_failed").inc()
            error_line = tb_text.strip().splitlines()[-1]
            journal_event(
                "sweep.point_failed",
                index=index,
                key=to_jsonable(key),
                error=error_line,
                traceback=tb_text,
            )
    journal_event(
        "sweep.end",
        completed=len(schedule.points) - len(failures),
        failed=len(failures),
    )
    if failures:
        raise SweepError(
            f"{len(failures)} of {len(schedule.points)} sweep points "
            f"failed: {', '.join(key for key, _ in failures)}",
            failures=failures,
        )
    return results
