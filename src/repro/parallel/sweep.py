"""Workbench-aware parallel sweep execution.

:func:`sweep_map` is what the experiment modules call to evaluate a
grid of independent points (ENOB values, freeze groups, layer indices):

1. The :mod:`~repro.parallel.scheduler` plans a serial *prelude* of
   shared artifacts (trained baselines), which is built once in the
   parent process so the disk cache is warm before any fan-out.
2. With ``bench.jobs <= 1`` every point runs in the calling process on
   the caller's own workbench — byte-for-byte the behaviour of the old
   serial loops.
3. With ``bench.jobs > 1`` the points fan out over a process pool.
   Each worker constructs its own :class:`~repro.experiments.common.
   Workbench` from the (picklable) experiment config once, then serves
   points from it.  Because every stochastic input is derived
   deterministically from the config (data generation, weight init,
   per-point noise seeds) and shared models are loaded from the warmed
   cache, the results are bit-identical to the serial run regardless of
   worker count or completion order.

Point functions must be module-level functions of signature
``fn(bench, *args, **kwargs)`` returning picklable values.
"""

from __future__ import annotations

from typing import Callable, List, Mapping, Optional, Sequence

from repro.parallel.runner import SweepRunner
from repro.parallel.scheduler import Artifact, SweepPoint, plan
from repro.utils import profiler as _profiler

#: Worker-process-local workbench, built once by :func:`_init_worker`.
_WORKER_BENCH = None


def _init_worker(config) -> None:
    global _WORKER_BENCH
    from repro.experiments.common import Workbench

    _WORKER_BENCH = Workbench(config)


def _run_point(task):
    fn, args, kwargs = task
    return fn(_WORKER_BENCH, *args, **kwargs)


def sweep_map(
    bench,
    fn: Callable,
    points: Sequence[SweepPoint],
    artifacts: Optional[Mapping[str, Artifact]] = None,
) -> List:
    """Evaluate ``fn(bench, *point.args, **point.kwargs)`` per point.

    Results are returned in point order.  See the module docstring for
    the serial/parallel execution contract.
    """
    schedule = plan(points, artifacts or {})
    token = _profiler.op_start()
    for name in schedule.prelude:
        artifacts[name].build(bench)
    _profiler.op_end(token, "sweep.prelude")

    token = _profiler.op_start()
    jobs = getattr(bench, "jobs", 1)
    if jobs <= 1:
        results = [
            fn(bench, *p.args, **p.kwargs) for p in schedule.points
        ]
    else:
        runner = SweepRunner(
            jobs=jobs, initializer=_init_worker, initargs=(bench.config,)
        )
        tasks = [(fn, p.args, p.kwargs) for p in schedule.points]
        results = runner.map(_run_point, tasks)
    _profiler.op_end(token, "sweep.points")
    return results
