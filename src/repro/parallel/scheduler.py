"""Cache-aware scheduling of sweep grid points.

A sweep (ENOB grid, freeze ablation, per-layer sensitivity scan) is a
set of independent :class:`SweepPoint`\\ s, but the points usually lean
on shared trained artifacts — the pretrained FP32 network, the
quantized baselines — that the :class:`~repro.experiments.common.
Workbench` builds lazily and caches on disk.  Fanning points out before
those artifacts exist would make every worker train the same baseline
(wasted work, and racing writers on the same cache file).

:func:`plan` therefore topologically orders the declared
:class:`Artifact` dependencies into a serial *prelude* (built once, in
the parent process, warming the on-disk cache) after which all points
are free to run concurrently; workers then find the shared models
already trained and merely load them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class Artifact:
    """A named shared prerequisite (e.g. a trained baseline).

    Attributes
    ----------
    name:
        Stable identifier referenced by ``SweepPoint.requires`` and by
        other artifacts' ``deps``.
    build:
        ``build(bench) -> None`` — idempotent warm-up callable run in
        the parent process (typically a cached Workbench method).
    deps:
        Names of artifacts that must be built before this one.
    """

    name: str
    build: Callable
    deps: Tuple[str, ...] = ()


@dataclass(frozen=True)
class SweepPoint:
    """One independent grid point of a sweep.

    Attributes
    ----------
    key:
        Stable identifier (e.g. the ENOB value); used for labeling and
        deterministic per-point RNG derivation.
    args, kwargs:
        Arguments forwarded to the point function after the workbench.
    requires:
        Names of shared artifacts this point depends on.
    """

    key: object
    args: Tuple = ()
    kwargs: Mapping = field(default_factory=dict)
    requires: Tuple[str, ...] = ()


@dataclass(frozen=True)
class SweepSchedule:
    """Output of :func:`plan`: serial prelude + parallelizable points."""

    prelude: Tuple[str, ...]
    points: Tuple[SweepPoint, ...]


def topo_order(artifacts: Mapping[str, Artifact], needed: Sequence[str]) -> List[str]:
    """Dependency-respecting build order of ``needed`` (plus transitive deps).

    Depth-first with cycle detection; ties resolve in declaration order
    of ``artifacts`` so the prelude is deterministic.
    """
    order: List[str] = []
    done: set = set()
    visiting: set = set()

    def visit(name: str, chain: Tuple[str, ...]) -> None:
        if name in done:
            return
        if name not in artifacts:
            raise ConfigError(
                f"unknown artifact {name!r} (required via {' -> '.join(chain) or 'a sweep point'}); "
                f"declared: {sorted(artifacts)}"
            )
        if name in visiting:
            raise ConfigError(
                f"artifact dependency cycle: {' -> '.join(chain + (name,))}"
            )
        visiting.add(name)
        for dep in artifacts[name].deps:
            visit(dep, chain + (name,))
        visiting.discard(name)
        done.add(name)
        order.append(name)

    for name in needed:
        visit(name, ())
    return order


def plan(
    points: Sequence[SweepPoint],
    artifacts: Mapping[str, Artifact] = (),
) -> SweepSchedule:
    """Schedule a sweep: shared artifacts first, then the point fan-out.

    Point order is preserved (results are assembled by input position,
    so execution order never affects output order).
    """
    artifacts = dict(artifacts or {})
    needed: List[str] = []
    seen: set = set()
    for point in points:
        for name in point.requires:
            if name not in seen:
                seen.add(name)
                needed.append(name)
    prelude = topo_order(artifacts, needed)
    return SweepSchedule(prelude=tuple(prelude), points=tuple(points))
