"""Generic process-pool runner for independent tasks.

:class:`SweepRunner` maps a picklable top-level function over a list of
task tuples.  ``jobs <= 1`` (the default everywhere) executes in the
calling process with zero multiprocessing machinery — the results are
the exact objects the serial code would produce.  ``jobs > 1`` fans the
tasks out over a process pool; results always come back in input
order, so callers are oblivious to completion order.

Tasks must be deterministic functions of their arguments (every
stochastic component in this repo takes an explicit seed or generator),
which is what makes the parallel results bit-identical to serial.

The pooled path is fault tolerant: when a worker process dies (OOM
kill, segfault, preemption) the pool is rebuilt and the tasks that were
in flight are retried with exponential backoff, up to ``retries``
additional attempts per task.  A task that still cannot complete is
handed to the ``on_lost`` fallback (the sweep engine turns it into an
ordinary failed point) or, without one, raises
:class:`~repro.errors.WorkerLostError`.  Ordinary exceptions *raised
by* the task function are not retried — they are deterministic and
propagate immediately, exactly as before.

The start method defaults to ``fork`` where available (cheap on Linux;
the workers re-derive all state from their arguments regardless, so
fork-inherited globals are never relied upon) and can be overridden
with the ``REPRO_MP_START`` environment variable (``fork`` / ``spawn``
/ ``forkserver``).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError, WorkerLostError


def start_method() -> str:
    """The multiprocessing start method the runner will use."""
    override = os.environ.get("REPRO_MP_START")
    if override:
        if override not in multiprocessing.get_all_start_methods():
            raise ConfigError(
                f"REPRO_MP_START={override!r} not available; "
                f"options: {multiprocessing.get_all_start_methods()}"
            )
        return override
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


class SweepRunner:
    """Maps a task function over payloads, serially or via a process pool.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` runs in-process (bit-identical to a
        plain loop); ``n > 1`` uses a pool of ``min(n, len(tasks))``.
    initializer, initargs:
        Optional per-worker setup (e.g. building a worker-local
        Workbench once, instead of per task).  Both must be picklable.
    mp_context:
        Start-method name; defaults to :func:`start_method`.
    retries:
        Extra attempts granted to a task whose worker process died
        (the pool is rebuilt between attempts).  ``0`` disables retry.
    backoff_s:
        Base delay before a retry round; doubles per attempt
        (``backoff_s * 2**(attempt-1)``).
    on_retry:
        Called as ``on_retry(index, task, attempt, delay_s)`` before
        each retried attempt — the sweep engine journals these.
    on_lost:
        Called as ``on_lost(index, task)`` to produce a stand-in result
        for a task whose retries are exhausted; without it the runner
        raises :class:`~repro.errors.WorkerLostError`.
    """

    def __init__(
        self,
        jobs: int = 1,
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
        mp_context: Optional[str] = None,
        retries: int = 0,
        backoff_s: float = 0.5,
        on_retry: Optional[Callable] = None,
        on_lost: Optional[Callable] = None,
    ):
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ConfigError(f"retries must be >= 0, got {retries}")
        if backoff_s < 0:
            raise ConfigError(f"backoff_s must be >= 0, got {backoff_s}")
        self.jobs = jobs
        self.initializer = initializer
        self.initargs = initargs
        self.mp_context = mp_context
        self.retries = retries
        self.backoff_s = backoff_s
        self.on_retry = on_retry
        self.on_lost = on_lost

    def map(self, fn: Callable, tasks: Sequence) -> List:
        """``[fn(task) for task in tasks]``, possibly across processes.

        ``fn`` must be a module-level (picklable) callable when
        ``jobs > 1``.  Results are ordered by input position.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        jobs = min(self.jobs, len(tasks))
        if jobs <= 1:
            if self.initializer is not None:
                self.initializer(*self.initargs)
            return [fn(task) for task in tasks]
        return self._pooled_map(fn, tasks, jobs)

    def _pooled_map(self, fn: Callable, tasks: List, jobs: int) -> List:
        ctx = multiprocessing.get_context(self.mp_context or start_method())
        results: List = [None] * len(tasks)
        #: (task index, attempts so far) still needing a result.
        pending: List[Tuple[int, int]] = [(i, 0) for i in range(len(tasks))]
        while pending:
            broken = self._run_round(fn, tasks, jobs, ctx, pending, results)
            if not broken:
                break
            pending = self._plan_retries(tasks, broken, results)
        return results

    def _run_round(self, fn, tasks, jobs, ctx, pending, results) -> List:
        """Submit ``pending`` once; returns tasks lost to worker death."""
        executor = ProcessPoolExecutor(
            max_workers=min(jobs, len(pending)),
            mp_context=ctx,
            initializer=self.initializer,
            initargs=self.initargs,
        )
        broken: List[Tuple[int, int]] = []
        try:
            futures = {}
            try:
                for index, attempts in pending:
                    futures[executor.submit(fn, tasks[index])] = (
                        index,
                        attempts,
                    )
            except BrokenProcessPool:
                # Pool died mid-submission: everything not yet submitted
                # is as lost as the in-flight work.
                submitted = {index for index, _ in futures.values()}
                broken.extend(
                    (index, attempts + 1)
                    for index, attempts in pending
                    if index not in submitted
                )
            for future in as_completed(futures):
                index, attempts = futures[future]
                try:
                    results[index] = future.result()
                except BrokenProcessPool:
                    # The culprit is unknowable (every in-flight future
                    # breaks together), so each broken task gets the
                    # strike and its own retry budget.
                    broken.append((index, attempts + 1))
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        return broken

    def _plan_retries(self, tasks, broken, results) -> List:
        """Split broken tasks into a retry round and absorbed losses."""
        retry = [(i, n) for i, n in broken if n <= self.retries]
        lost = [(i, n) for i, n in broken if n > self.retries]
        for index, attempts in lost:
            if self.on_lost is None:
                raise WorkerLostError(
                    f"task {index} lost its worker process {attempts} "
                    f"time(s); retries ({self.retries}) exhausted"
                )
            results[index] = self.on_lost(index, tasks[index])
        if retry:
            max_attempt = max(attempts for _, attempts in retry)
            delay = self.backoff_s * (2 ** (max_attempt - 1))
            if self.on_retry is not None:
                for index, attempts in retry:
                    self.on_retry(index, tasks[index], attempts, delay)
            if delay > 0:
                time.sleep(delay)
        return retry
