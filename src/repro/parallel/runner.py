"""Generic process-pool runner for independent tasks.

:class:`SweepRunner` maps a picklable top-level function over a list of
task tuples.  ``jobs <= 1`` (the default everywhere) executes in the
calling process with zero multiprocessing machinery — the results are
the exact objects the serial code would produce.  ``jobs > 1`` fans the
tasks out over a ``multiprocessing`` pool; results always come back in
input order, so callers are oblivious to completion order.

Tasks must be deterministic functions of their arguments (every
stochastic component in this repo takes an explicit seed or generator),
which is what makes the parallel results bit-identical to serial.

The start method defaults to ``fork`` where available (cheap on Linux;
the workers re-derive all state from their arguments regardless, so
fork-inherited globals are never relied upon) and can be overridden
with the ``REPRO_MP_START`` environment variable (``fork`` / ``spawn``
/ ``forkserver``).
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Optional, Sequence

from repro.errors import ConfigError


def start_method() -> str:
    """The multiprocessing start method the runner will use."""
    override = os.environ.get("REPRO_MP_START")
    if override:
        if override not in multiprocessing.get_all_start_methods():
            raise ConfigError(
                f"REPRO_MP_START={override!r} not available; "
                f"options: {multiprocessing.get_all_start_methods()}"
            )
        return override
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


class SweepRunner:
    """Maps a task function over payloads, serially or via a process pool.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` runs in-process (bit-identical to a
        plain loop); ``n > 1`` uses a pool of ``min(n, len(tasks))``.
    initializer, initargs:
        Optional per-worker setup (e.g. building a worker-local
        Workbench once, instead of per task).  Both must be picklable.
    mp_context:
        Start-method name; defaults to :func:`start_method`.
    """

    def __init__(
        self,
        jobs: int = 1,
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
        mp_context: Optional[str] = None,
    ):
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.initializer = initializer
        self.initargs = initargs
        self.mp_context = mp_context

    def map(self, fn: Callable, tasks: Sequence) -> List:
        """``[fn(task) for task in tasks]``, possibly across processes.

        ``fn`` must be a module-level (picklable) callable when
        ``jobs > 1``.  Results are ordered by input position.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        jobs = min(self.jobs, len(tasks))
        if jobs <= 1:
            if self.initializer is not None:
                self.initializer(*self.initargs)
            return [fn(task) for task in tasks]
        ctx = multiprocessing.get_context(self.mp_context or start_method())
        with ctx.Pool(
            processes=jobs,
            initializer=self.initializer,
            initargs=self.initargs,
        ) as pool:
            # chunksize=1: grid points are coarse (seconds each); dynamic
            # dispatch beats pre-chunking when point costs are uneven.
            return pool.map(fn, tasks, chunksize=1)
