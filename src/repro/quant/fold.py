"""Batch-norm folding.

The paper notes that after retraining, batch-norm weights "can be folded
into the convolutional layer, while biases can be added digitally at
little extra energy cost" — which is why leaving BN unquantized is
acceptable.  This module implements that folding for deployment-style
inference.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.batchnorm import _BatchNorm
from repro.nn.conv import Conv2d


def fold_batchnorm(conv: Conv2d, bn: _BatchNorm) -> Tuple[np.ndarray, np.ndarray]:
    """Fold BN statistics/affine params into conv weights and bias.

    Returns ``(weight, bias)`` such that for any input ``x``::

        conv_fold(x) == bn(conv(x))    (in eval mode)

    with ``weight`` shaped like ``conv.weight`` and ``bias`` per output
    channel.  The conv's own bias (if any) is absorbed.
    """
    gamma = bn.weight.data
    beta = bn.bias.data
    mean = bn.running_mean
    var = bn.running_var
    scale = gamma / np.sqrt(var + bn.eps)  # per output channel

    weight = conv.weight.data * scale.reshape(-1, 1, 1, 1)
    conv_bias = conv.bias.data if conv.bias is not None else 0.0
    bias = (conv_bias - mean) * scale + beta
    return weight.astype(np.float32), bias.astype(np.float32)
