"""DoReFa-style quantization (weights + activations) with STE training.

This is the repo's stand-in for Distiller's DoReFa implementation, which
the paper builds on: convolutional weights are squashed to [-1, 1] and
quantized to ``BW`` bits; activations are clipped to [0, 1] by a clipped
ReLU and quantized to ``BX`` bits; gradients flow through both via the
straight-through estimator.  As in Distiller, gradients and batch-norm
parameters are *not* quantized.
"""

from repro.quant.dorefa import (
    quantize_unit_interval,
    quantize_symmetric,
    dorefa_quantize_weight,
    dorefa_quantize_activation,
    weight_levels,
)
from repro.quant.qmodules import (
    QuantConfig,
    QuantConv2d,
    QuantLinear,
    QuantClippedReLU,
    InputQuantizer,
)
from repro.quant.fold import fold_batchnorm
from repro.quant.deploy import fold_model_batchnorms

__all__ = [
    "quantize_unit_interval",
    "quantize_symmetric",
    "dorefa_quantize_weight",
    "dorefa_quantize_activation",
    "weight_levels",
    "QuantConfig",
    "QuantConv2d",
    "QuantLinear",
    "QuantClippedReLU",
    "InputQuantizer",
    "fold_batchnorm",
    "fold_model_batchnorms",
]
