"""Quantized layer modules (the pieces of paper Fig. 3).

A quantized convolutional layer in the paper's setup is::

    [quantized input acts] -> Conv(w quantized to BW bits)
        -> (AMS error injection, see repro.ams)
        -> BatchNorm (FP32)
        -> ReLU clipped at 1 -> quantize to BX bits

``QuantConv2d`` / ``QuantLinear`` quantize their weights on every
forward pass (training quantization with STE); ``QuantClippedReLU`` is
the quantized activation; ``InputQuantizer`` performs the paper's
first-layer treatment (rescale inputs by the maximum magnitude so they
lie in [-1, 1], then quantize to BX signed bits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigError
from repro.nn.conv import Conv2d
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.quant.dorefa import (
    dorefa_quantize_activation,
    dorefa_quantize_weight,
    quantize_symmetric,
)
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, is_grad_enabled


@dataclass(frozen=True)
class QuantConfig:
    """Bit widths for DoReFa quantization.

    ``bw``/``bx`` of 32 mean "leave at FP32" (the paper's baseline row).
    """

    bw: int = 8
    bx: int = 8

    def __post_init__(self):
        for name, bits in (("bw", self.bw), ("bx", self.bx)):
            if bits < 2:
                raise ConfigError(f"{name} must be >= 2 (or 32 for FP32), got {bits}")

    @property
    def is_fp32(self) -> bool:
        return self.bw >= 32 and self.bx >= 32


def _memoized_quantized_weight(layer) -> Tensor:
    """DoReFa-quantize ``layer.weight``, memoized at inference time.

    Under grad mode the quantizer must run through the STE graph every
    forward, so memoization only applies inside ``no_grad()``.  The memo
    is keyed on the parameter's version counter plus the identity of its
    backing array, so optimizer steps, ``load_state_dict`` and direct
    ``weight.data`` reassignment all invalidate it.
    """
    if is_grad_enabled():
        return dorefa_quantize_weight(layer.weight, layer.bw)
    key = (getattr(layer.weight, "version", 0), layer.bw)
    cached = getattr(layer, "_qw_cache", None)
    if (
        cached is not None
        and cached[0] == key
        and cached[1] is layer.weight.data
    ):
        return cached[2]
    qw = dorefa_quantize_weight(layer.weight, layer.bw)
    object.__setattr__(layer, "_qw_cache", (key, layer.weight.data, qw))
    return qw


class QuantConv2d(Conv2d):
    """Conv2d whose weights are DoReFa-quantized to ``bw`` bits per forward.

    The underlying FP32 weight remains the trainable parameter; the STE
    lets gradients update it through the quantizer.
    """

    def __init__(self, *args, bw: int = 8, **kwargs):
        super().__init__(*args, **kwargs)
        self.bw = bw

    def quantized_weight(self) -> Tensor:
        return _memoized_quantized_weight(self)

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(
            x,
            self.quantized_weight(),
            self.bias,
            stride=self.stride,
            padding=self.padding,
        )

    def __repr__(self) -> str:
        return super().__repr__().replace("Conv2d(", f"QuantConv2d(bw={self.bw}, ")


class QuantLinear(Linear):
    """Linear layer with DoReFa-quantized weights."""

    def __init__(self, *args, bw: int = 8, **kwargs):
        super().__init__(*args, **kwargs)
        self.bw = bw

    def quantized_weight(self) -> Tensor:
        return _memoized_quantized_weight(self)

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.quantized_weight(), self.bias)

    def __repr__(self) -> str:
        return f"QuantLinear(bw={self.bw}, in={self.in_features}, out={self.out_features})"


class QuantClippedReLU(Module):
    """The "Quantized ReLU" of Fig. 3: clip to [0, 1], quantize to bx bits."""

    def __init__(self, bx: int = 8, ceiling: float = 1.0):
        super().__init__()
        self.bx = bx
        self.ceiling = ceiling

    def forward(self, x: Tensor) -> Tensor:
        return dorefa_quantize_activation(x, self.bx, self.ceiling)

    def __repr__(self) -> str:
        return f"QuantClippedReLU(bx={self.bx}, ceiling={self.ceiling})"


class InputQuantizer(Module):
    """First-layer input treatment from paper Section 2.

    Network inputs are not outputs of a clipped ReLU, so they must be
    bounded before quantization: "we rescale them by the maximum input
    activation value so that they lie in the range [-1, 1] before
    quantizing".  The maximum is calibrated from data (either fixed at
    construction or tracked from the first batches).
    """

    def __init__(self, bx: int = 8, max_abs: Optional[float] = None):
        super().__init__()
        self.bx = bx
        self.max_abs = max_abs

    def calibrate(self, images: np.ndarray) -> None:
        """Set the rescaling constant from a sample of input images."""
        self.max_abs = float(np.abs(images).max())

    def forward(self, x: Tensor) -> Tensor:
        scale = self.max_abs
        if scale is None:
            # Fall back to per-batch max; deterministic once calibrated.
            scale = float(np.abs(x.data).max())
        if scale == 0.0:
            scale = 1.0
        bounded = (x * (1.0 / scale)).clip(-1.0, 1.0)
        return quantize_symmetric(bounded, self.bx)

    def __repr__(self) -> str:
        return f"InputQuantizer(bx={self.bx}, max_abs={self.max_abs})"
