"""DoReFa quantization functions (Zhou et al., 2016 [28]).

All functions operate on autograd tensors and use the straight-through
estimator for the rounding step, so quantization can sit inside the
training loop exactly as in the paper's Distiller-based setup.

Key property relied on by the AMS error model (paper Section 2):
DoReFa "caps all weights and activations at 1", so the ideal dot product
of ``Ntot`` weight/activation pairs lies in ``[-Ntot, Ntot]`` and the
binary point of Fig. 2 is known without per-layer calibration.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.tensor.functional import straight_through
from repro.tensor.tensor import Tensor


def weight_levels(bits: int) -> int:
    """Number of quantization levels for ``bits``-bit DoReFa values."""
    if bits < 1:
        raise ConfigError(f"bit width must be >= 1, got {bits}")
    return (1 << bits) - 1


def quantize_unit_interval(x: Tensor, bits: int) -> Tensor:
    """Quantize values in [0, 1] to ``bits`` bits with STE backward.

    ``quantize_k`` from the DoReFa paper:
    ``q = round(x * (2^k - 1)) / (2^k - 1)``.
    """
    if bits >= 32:
        return x
    levels = weight_levels(bits)
    return straight_through(x, lambda d: np.round(d * levels) / levels)


def quantize_symmetric(x: Tensor, bits: int) -> Tensor:
    """Quantize values in [-1, 1] to ``bits``-bit signed values (STE).

    Uses a symmetric mid-tread quantizer with ``2^(bits-1) - 1`` positive
    steps, matching the paper's sign-magnitude representation (one sign
    bit, ``bits - 1`` magnitude bits).
    """
    if bits >= 32:
        return x
    if bits < 2:
        raise ConfigError("signed quantization needs at least 2 bits")
    steps = (1 << (bits - 1)) - 1
    return straight_through(x, lambda d: np.round(d * steps) / steps)


def dorefa_quantize_weight(w: Tensor, bits: int) -> Tensor:
    """DoReFa weight quantization to ``bits`` bits.

    The weight is squashed by ``tanh`` and normalized by the maximum
    absolute squashed value (a detached constant, as in Distiller), so
    the result lies in [-1, 1]:

    ``w_q = 2 * quantize_k(tanh(w) / (2 max|tanh(w)|) + 1/2, k) - 1``
    """
    if bits >= 32:
        return w
    squashed = w.tanh()
    scale = float(np.abs(squashed.data).max())
    if scale == 0.0:
        scale = 1.0
    # Divide rather than multiply by the reciprocal: for subnormal
    # scales, 0.5/scale overflows float32 while squashed/scale stays
    # finite (found by the property-based tests).
    unit = squashed / (2.0 * scale) + 0.5  # -> [0, 1]
    quantized = quantize_unit_interval(unit, bits)
    return quantized * 2.0 - 1.0


def dorefa_quantize_activation(a: Tensor, bits: int, ceiling: float = 1.0) -> Tensor:
    """DoReFa activation quantization: clip to [0, ceiling], quantize.

    The clip is the "quantized ReLU" of paper Fig. 3; with
    ``ceiling=1`` the output activations are bounded in [0, 1].
    """
    clipped = a.clip(0.0, ceiling)
    if bits >= 32:
        return clipped
    if ceiling != 1.0:
        normalized = clipped * (1.0 / ceiling)
        return quantize_unit_interval(normalized, bits) * ceiling
    return quantize_unit_interval(clipped, bits)
