"""Deployment-time batch-norm folding for whole models.

The paper's justification for leaving BN unquantized: "after retraining,
weights can be folded into the convolutional layer, while biases can be
added digitally at little extra energy cost."  This module performs that
fold on a trained network so the deployed inference graph contains only
convolutions (with per-channel bias) and activations — the form an AMS
accelerator actually executes, where the folded scale rides on the
D-to-A weight codes and the bias is a digital post-ADC add.

The fold walks the module tree looking for the conv/BN attribute pairs
our architectures use (``conv1``/``bn1``, ``stem_conv``/``stem_bn``,
``conv``/``bn``, ...).  Quantized convolutions are materialized — the
folded weight is computed from the *quantized* weight, so a DoReFa
network folds into exactly the function it evaluated before folding.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.nn.activation import Identity
from repro.nn.batchnorm import _BatchNorm
from repro.nn.container import Sequential
from repro.nn.conv import Conv2d
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.quant.fold import fold_batchnorm
from repro.quant.qmodules import QuantConv2d


def _find_conv(module: Module):
    """The Conv2d inside a compute-layer Sequential (or the module itself)."""
    if isinstance(module, Conv2d):
        return module
    if isinstance(module, Sequential) and len(module) >= 1:
        first = module[0]
        if isinstance(first, Conv2d):
            return first
    return None


def _conv_bn_pairs(model: Module) -> List[Tuple[Module, str, str]]:
    """All (parent, conv_attr, bn_attr) pairs eligible for folding."""
    pairs = []
    for _, module in model.named_modules():
        for name, child in list(module._modules.items()):
            if _find_conv(child) is None:
                continue
            bn_name = name.replace("conv", "bn")
            if bn_name == name:
                continue
            sibling = module._modules.get(bn_name)
            if isinstance(sibling, _BatchNorm):
                pairs.append((module, name, bn_name))
    return pairs


def fold_model_batchnorms(model: Module) -> int:
    """Fold every conv+BN pair of a trained model, in place.

    After folding, each affected convolution is a plain :class:`Conv2d`
    whose weights absorb the BN scale (materialized from the quantized
    weights for DoReFa convs) and whose bias absorbs the BN shift; the
    BN modules become :class:`Identity`.  The model must be used in
    eval mode afterwards (running statistics are consumed by the fold).

    Returns the number of pairs folded; raises if none were found.
    """
    pairs = _conv_bn_pairs(model)
    if not pairs:
        raise ConfigError("no conv/batch-norm pairs found to fold")
    for parent, conv_name, bn_name in pairs:
        wrapper = parent._modules[conv_name]
        conv = _find_conv(wrapper)
        bn = parent._modules[bn_name]
        # Materialize the effective weight (quantized if applicable).
        effective = Conv2d(
            conv.in_channels,
            conv.out_channels,
            conv.kernel_size,
            stride=conv.stride,
            padding=conv.padding,
            bias=True,
        )
        if isinstance(conv, QuantConv2d):
            effective.weight.data = conv.quantized_weight().data.copy()
        else:
            effective.weight.data = conv.weight.data.copy()
        if conv.bias is not None:
            effective.bias.data = conv.bias.data.copy()
        else:
            effective.bias.data = np.zeros(
                conv.out_channels, dtype=np.float32
            )
        weight, bias = fold_batchnorm(effective, bn)
        effective.weight = Parameter(weight)
        effective.bias = Parameter(bias)
        # Swap in: keep any trailing layers (probes/injectors) intact.
        if isinstance(wrapper, Sequential):
            tail = list(wrapper)[1:]
            setattr(parent, conv_name, Sequential(effective, *tail))
        else:
            setattr(parent, conv_name, effective)
        setattr(parent, bn_name, Identity())
    model.eval()
    return len(pairs)
