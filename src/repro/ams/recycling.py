"""Delta-sigma error recycling (paper Section 4, second hardware method).

"Another method of error reduction is to subtract the quantization error
incurred by the ADC in one cycle from the partial dot product computed
in the next cycle.  This can be shown to be equivalent to using a
first-order delta-sigma modulator in place of an ADC."

With error feedback, the conversion of cycle ``t`` is

    q_t = Q(p_t + e_{t-1}),     e_t = (p_t + e_{t-1}) - q_t

and the digital total telescopes to ``sum(q_t) = sum(p_t) - e_N``: the
accumulated quantization error collapses to that of a *single*
conversion (the last one), instead of growing with the number of cycles.
The paper notes the last conversion should be performed at a higher
resolution; ``final_extra_bits`` models that.
"""

from __future__ import annotations

import numpy as np

from repro.ams.vmac import vmac_lsb
from repro.errors import ConfigError


def _quantize(values: np.ndarray, lsb: float, full_scale: float) -> np.ndarray:
    """Mid-tread uniform quantization clipped at +/- full_scale."""
    return np.clip(np.round(values / lsb) * lsb, -full_scale, full_scale)


def plain_quantize(partials: np.ndarray, enob: float, nmult: int) -> np.ndarray:
    """Convert each partial sum independently, then sum digitally.

    ``partials`` has shape ``(..., cycles)``; the returned array drops
    the last axis.  This is the baseline the lumped model describes.
    """
    lsb = vmac_lsb(enob, nmult)
    return _quantize(partials, lsb, float(nmult)).sum(axis=-1)


def recycle_quantize(
    partials: np.ndarray,
    enob: float,
    nmult: int,
    final_extra_bits: float = 2.0,
) -> np.ndarray:
    """Convert with first-order delta-sigma error feedback.

    Parameters
    ----------
    partials:
        Analog partial sums, shape ``(..., cycles)``; successive cycles
        belong to the same output (requires output stationarity, as the
        paper notes).
    enob, nmult:
        VMAC parameters for the per-cycle conversions.
    final_extra_bits:
        The last conversion runs at ``enob + final_extra_bits`` ("also
        requires the last conversion to be performed at a higher
        resolution than the rest").

    Returns
    -------
    Digital totals with the last axis summed out.
    """
    if partials.ndim < 1 or partials.shape[-1] < 1:
        raise ConfigError("partials must have at least one cycle")
    cycles = partials.shape[-1]
    lsb = vmac_lsb(enob, nmult)
    lsb_final = vmac_lsb(enob + final_extra_bits, nmult)
    full_scale = float(nmult)

    total = np.zeros(partials.shape[:-1], dtype=partials.dtype)
    error = np.zeros_like(total)
    for t in range(cycles):
        analog = partials[..., t] + error
        step = lsb_final if t == cycles - 1 else lsb
        q = _quantize(analog, step, full_scale)
        error = analog - q
        total += q
    return total


def recycling_error_reduction(
    partials: np.ndarray,
    enob: float,
    nmult: int,
    final_extra_bits: float = 2.0,
) -> dict:
    """Compare RMS error of plain vs recycled conversion on real data.

    Returns a dict with ``rms_plain``, ``rms_recycled`` and the
    ``reduction_factor`` (>1 means recycling wins, which it should for
    more than one cycle).
    """
    ideal = partials.sum(axis=-1)
    plain = plain_quantize(partials, enob, nmult)
    recycled = recycle_quantize(partials, enob, nmult, final_extra_bits)
    rms_plain = float(np.sqrt(np.mean((plain - ideal) ** 2)))
    rms_recycled = float(np.sqrt(np.mean((recycled - ideal) ** 2)))
    return {
        "rms_plain": rms_plain,
        "rms_recycled": rms_recycled,
        "reduction_factor": rms_plain / max(rms_recycled, 1e-12),
    }
