"""Network-level lumped AMS error injection (paper Section 2, Fig. 3).

The paper lumps the error of all VMACs contributing to one output
activation "to the output of the digital summation of multiple VMAC cell
outputs" and injects a Gaussian sample there, during the forward pass
only.  :class:`AMSErrorInjector` is a module placed immediately after a
(quantized) convolution or linear layer, before batch norm.

Two behaviours from the paper are encoded in :class:`InjectionPolicy`:

- error is always injected at evaluation time (to model the hardware);
- injecting error into the *last* layer during training destroys
  learning, so the paper leaves the last layer error-free while
  training ("all other layers still have injected error during
  training").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.ams.vmac import VMACConfig, total_error_std
from repro.errors import ConfigError
from repro.nn.module import Module
from repro.tensor.functional import add_forward_noise
from repro.tensor.pool import default_pool
from repro.tensor.tensor import Tensor
from repro.utils import profiler as _profiler


@dataclass(frozen=True)
class InjectionPolicy:
    """When the injector adds error.

    Attributes
    ----------
    in_training:
        Inject during training forward passes.  Retraining with AMS
        error in the loop sets this True everywhere except the last
        layer (the paper's workaround).
    in_eval:
        Inject during evaluation.  Always True when modeling hardware;
        set False to measure the error-free quantized baseline.
    """

    in_training: bool = True
    in_eval: bool = True

    @staticmethod
    def eval_only() -> "InjectionPolicy":
        """Error at evaluation time only (paper Figs. 4-5, dashed series)."""
        return InjectionPolicy(in_training=False, in_eval=True)

    @staticmethod
    def disabled() -> "InjectionPolicy":
        return InjectionPolicy(in_training=False, in_eval=False)


class AMSErrorInjector(Module):
    """Additive Gaussian AMS error at an accumulated dot-product output.

    Parameters
    ----------
    config:
        VMAC parameters (ENOB, Nmult).
    ntot:
        Multiplications per output activation of the preceding layer
        (``C_in * kh * kw`` for conv, ``in_features`` for linear).
    policy:
        When to inject (training / eval).
    rng:
        Noise generator; pass a spawned child generator per layer so
        runs are reproducible.

    Notes
    -----
    The error is sampled i.i.d. per output element per forward pass and
    added via a forward-only primitive, so the backward pass is exactly
    that of the noiseless graph (paper: "We inject this error during
    only the forward pass, leaving the backward pass untouched").
    """

    def __init__(
        self,
        config: VMACConfig,
        ntot: int,
        policy: InjectionPolicy = InjectionPolicy(),
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if ntot < 1:
            raise ConfigError(f"ntot must be >= 1, got {ntot}")
        self.config = config
        self.ntot = ntot
        self.policy = policy
        self.rng = rng or np.random.default_rng()
        self.row_rngs: Optional[List[np.random.Generator]] = None
        self.error_std = total_error_std(config.enob, config.nmult, ntot)

    @property
    def active(self) -> bool:
        """Whether the current mode (train/eval) injects error."""
        return self.policy.in_training if self.training else self.policy.in_eval

    def set_row_rngs(
        self, rngs: Optional[Sequence[np.random.Generator]]
    ) -> None:
        """Attach one noise generator per batch row (or ``None`` to clear).

        With row generators attached, the forward pass draws each
        sample's noise from its own stream, so a sample's error depends
        only on its generator — never on which other requests were
        coalesced into the same batch.  This is what lets the serving
        engine's dynamic micro-batcher stay reproducible per request at
        any concurrency (see :mod:`repro.serve.engine`).
        """
        self.row_rngs = list(rngs) if rngs is not None else None

    def sample_noise(self, shape, dtype, pool=None) -> np.ndarray:
        """Draw one batch of error samples into a pooled buffer.

        The caller owns the returned buffer and must release it back to
        ``pool`` (default: the process pool).  This is the single
        RNG-consuming path shared by the interpreted forward and the
        compiled executor, which is what keeps their noise streams
        bit-identical.
        """
        if pool is None:
            pool = default_pool()
        # Draw into a pooled float64 buffer and scale in place; this is
        # bit-identical to ``rng.normal(0.0, std, size=shape)`` (the
        # same ziggurat draws, then loc + scale * z with loc = 0).
        draw = pool.get(shape, np.float64)
        if self.row_rngs is not None:
            if len(self.row_rngs) != shape[0]:
                raise ConfigError(
                    f"{len(self.row_rngs)} row generators for a batch "
                    f"of {shape[0]}"
                )
            for row, row_rng in zip(draw, self.row_rngs):
                row_rng.standard_normal(out=row)
        else:
            self.rng.standard_normal(out=draw)
        draw *= self.error_std
        if np.dtype(dtype) == np.float64:
            return draw
        # Pooled equivalent of ``.astype(dtype)``.
        noise = pool.get(shape, dtype)
        np.copyto(noise, draw, casting="unsafe")
        pool.release(draw)
        return noise

    def forward(self, x: Tensor) -> Tensor:
        if not self.active or self.error_std == 0.0:
            return x
        token = _profiler.op_start()
        pool = default_pool()
        noise = self.sample_noise(x.shape, x.dtype)
        out = add_forward_noise(x, noise)
        # add_forward_noise stores x + noise in a fresh array; the
        # sample buffer itself is not referenced by the graph.
        pool.release(noise)
        _profiler.op_end(token, "ams.inject")
        return out

    def __repr__(self) -> str:
        return (
            f"AMSErrorInjector(enob={self.config.enob}, "
            f"nmult={self.config.nmult}, ntot={self.ntot}, "
            f"std={self.error_std:.3e}, policy={self.policy})"
        )
