"""Deprecated import path: the injector moved to :mod:`repro.ams.models`.

The lumped network-level injector used to be the only error model, so
it lived alone in this module.  The error-model registry redesign
re-homed :class:`~repro.ams.models.AMSErrorInjector` (now a host for
any registered :class:`~repro.ams.models.ErrorModel`) and
:class:`~repro.ams.models.InjectionPolicy` next to the registry.

Importing them from here still works but warns once per process
(:func:`repro.obs.deprecation.warn_once`); new code should import from
:mod:`repro.ams.models` — or just :mod:`repro.ams` — and construct
injectors via :func:`repro.ams.models.make_injector`.
"""

from __future__ import annotations

from repro.obs.deprecation import warn_once

#: Symbols this module used to define, now living in repro.ams.models.
_MOVED = ("AMSErrorInjector", "InjectionPolicy")

__all__ = list(_MOVED)


def __getattr__(name: str):
    if name in _MOVED:
        warn_once(
            f"repro.ams.injection.{name}",
            f"importing {name} from repro.ams.injection is deprecated; "
            "it moved to repro.ams.models (also re-exported by "
            "repro.ams)",
        )
        from repro.ams import models

        return getattr(models, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
