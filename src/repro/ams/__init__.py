"""The paper's primary contribution: the AMS VMAC error model.

An analog/mixed-signal vector multiply-accumulate (VMAC) cell computes
the dot product of ``Nmult`` weight/activation pairs in the analog
domain and digitizes the result with an effective resolution of
``ENOB_VMAC`` bits.  The model abstracts all AMS non-idealities
(multiplier + ADC thermal noise, nonlinearity, quantization) into a
single additive, data-independent error at the ADC input.

Modules:

- :mod:`repro.ams.vmac` — the error math of Eqs. 1-2 and the precision
  bookkeeping of Fig. 2.
- :mod:`repro.ams.models` — the pluggable error-model interface and
  registry, plus the network-level injector that hosts a model at each
  accumulated convolution output (forward pass only).  The paper's
  lumped Gaussian is the ``"lumped_gaussian"`` reference model.
- :mod:`repro.ams.zoo` — the built-in error-model zoo: per-VMAC
  injection, multiplication partitioning, ADC reference scaling,
  state-dependent magnitude noise and tile-correlated noise.
- :mod:`repro.ams.tiled` — Section-4 refinement: split the convolution
  into VMAC-sized units and quantize each partial sum separately.
- :mod:`repro.ams.recycling` — Section-4 extension: first-order
  delta-sigma error recycling across successive conversions.
- :mod:`repro.ams.partitioning` — Section-4 extension: long-
  multiplication operand partitioning.
- :mod:`repro.ams.reference_scaling` — Section-4 extension: trading
  ADC dynamic range for resolution by scaling the reference voltage.
"""

from repro.ams.vmac import (
    VMACConfig,
    vmac_lsb,
    vmac_error_std,
    total_error_std,
    equivalent_enob,
    PrecisionBreakdown,
)
from repro.ams.models import (
    AMSErrorInjector,
    ErrorModel,
    ErrorModelContext,
    InjectionPolicy,
    LumpedGaussian,
    NoiseStreams,
    get_model,
    list_models,
    make_injector,
    register_model,
)
from repro.ams import zoo  # noqa: F401  (registers the built-in models)
from repro.ams.tiled import tiled_vmac_dot, TiledVMACConv2d, tile_quantized_convs
from repro.ams.recycling import recycle_quantize, plain_quantize, recycling_error_reduction
from repro.ams.partitioning import PartitionScheme, partitioned_error_std, partitioned_energy
from repro.ams.reference_scaling import clipped_quantize, reference_scaling_sweep
from repro.ams.allocation import (
    LayerBudget,
    analytic_allocation,
    greedy_allocation,
    allocation_energy,
    allocation_variance,
    uniform_energy,
    uniform_variance,
    set_layer_enobs,
)
from repro.ams.static_errors import (
    DeviceVariation,
    StaticChannelError,
    apply_device_variation,
    population_accuracy,
)

__all__ = [
    "VMACConfig",
    "vmac_lsb",
    "vmac_error_std",
    "total_error_std",
    "equivalent_enob",
    "PrecisionBreakdown",
    "AMSErrorInjector",
    "ErrorModel",
    "ErrorModelContext",
    "InjectionPolicy",
    "LumpedGaussian",
    "NoiseStreams",
    "get_model",
    "list_models",
    "make_injector",
    "register_model",
    "tiled_vmac_dot",
    "TiledVMACConv2d",
    "tile_quantized_convs",
    "recycle_quantize",
    "plain_quantize",
    "recycling_error_reduction",
    "PartitionScheme",
    "partitioned_error_std",
    "partitioned_energy",
    "clipped_quantize",
    "reference_scaling_sweep",
    "LayerBudget",
    "analytic_allocation",
    "greedy_allocation",
    "allocation_energy",
    "allocation_variance",
    "uniform_energy",
    "uniform_variance",
    "set_layer_enobs",
    "DeviceVariation",
    "StaticChannelError",
    "apply_device_variation",
    "population_accuracy",
]
