"""Heterogeneous per-layer ENOB allocation.

The paper evaluates a single (ENOB, Nmult) for every layer, and offers
Fig. 8 "as a lookup table by circuit designers to evaluate the
network-level impact of circuit-level design choices."  A natural
design choice it enables is *heterogeneous* resolution: layers differ
in how many MACs they execute (energy weight) and in their ``Ntot``
(error weight, Eq. 2), so spending bits where they are cheap and
effective beats a uniform assignment.

Formulation
-----------
Minimize total conversion energy

    E = sum_l  macs_l * E_ADC(e_l) / Nmult

subject to a total injected-error-variance budget

    sum_l  outputs_l * Ntot_l * Nmult * 4^-(e_l - 1) / 12  <=  V

In the thermal-limited regime (``E_ADC ∝ 4^e``) the Lagrangian yields a
closed form: the optimal ENOB of layer ``l`` is a common base plus
``0.25 * log2(error_weight_l / energy_weight_l)``.  Below the ADC knee
energy is flat, so extra bits are free until the knee —
:func:`greedy_allocation` handles the full piecewise model by water-
filling half-bit steps onto whichever layer buys the most error
reduction per pJ.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.ams.models import AMSErrorInjector
from repro.ams.vmac import VMACConfig, total_error_std
from repro.energy.adc import adc_energy
from repro.errors import ConfigError
from repro.nn.module import Module


@dataclass(frozen=True)
class LayerBudget:
    """Per-layer quantities the allocator needs.

    Attributes
    ----------
    name:
        Label for reporting.
    ntot:
        MACs per output activation (error weight via Eq. 2).
    outputs:
        Output activations per inference (scales both the layer's MAC
        count and how many noisy values it contributes downstream).
    sensitivity:
        Relative harm of one unit of this layer's error variance.  The
        default (1.0) treats all variance equally — which the ``alloc``
        experiment shows is a *bad* proxy: small late layers (the
        classifier especially) are far more damaging per unit variance
        than wide early convolutions.  Pass e.g. ``total_outputs /
        outputs`` for per-activation weighting.
    """

    name: str
    ntot: int
    outputs: int
    sensitivity: float = 1.0

    @property
    def macs(self) -> int:
        return self.ntot * self.outputs

    def error_variance(self, enob: float, nmult: int) -> float:
        """Sensitivity-weighted injected variance this layer contributes
        (Eq. 2 summed over its outputs)."""
        return (
            self.sensitivity
            * self.outputs
            * total_error_std(enob, nmult, self.ntot) ** 2
        )

    def energy_pj(self, enob: float, nmult: int) -> float:
        return self.macs * adc_energy(enob) / nmult


def uniform_variance(
    layers: Sequence[LayerBudget], enob: float, nmult: int
) -> float:
    """Total injected variance of a homogeneous assignment."""
    return sum(layer.error_variance(enob, nmult) for layer in layers)


def uniform_energy(
    layers: Sequence[LayerBudget], enob: float, nmult: int
) -> float:
    """Total conversion energy (pJ/inference) of a homogeneous assignment."""
    return sum(layer.energy_pj(enob, nmult) for layer in layers)


def analytic_allocation(
    layers: Sequence[LayerBudget],
    nmult: int,
    variance_budget: float,
) -> Dict[str, float]:
    """Closed-form thermal-regime allocation.

    With ``E_ADC ∝ 4^e`` the Lagrangian optimum is

        e_l = base + 0.25 * log2(A_l / C_l)

    where ``A_l`` is the layer's error weight (variance per ``4^-e``)
    and ``C_l`` its energy weight (MACs); ``base`` is then fixed by the
    variance budget.  Valid when every resulting ENOB is above the ADC
    knee; use :func:`greedy_allocation` otherwise.
    """
    if variance_budget <= 0:
        raise ConfigError("variance budget must be positive")
    if not layers:
        raise ConfigError("no layers to allocate")
    # A_l: variance = A_l * 4^-e  =>  A_l = outputs * ntot * nmult * 4 / 12
    weights = []
    for layer in layers:
        a = (
            layer.sensitivity
            * layer.outputs
            * layer.ntot
            * nmult
            * 4.0
            / 12.0
        )
        c = float(layer.macs)
        weights.append((layer, a, c))
    # e_l = base + 0.25*log2(a/c); variance = sum a * 4^-(base + delta_l)
    deltas = [0.25 * math.log2(a / c) for _, a, c in weights]
    coeff = sum(
        a * 4.0 ** (-delta) for (_, a, _), delta in zip(weights, deltas)
    )
    # coeff * 4^-base = budget  =>  base = 0.5*log2(coeff/budget)
    base = 0.5 * math.log2(coeff / variance_budget)
    return {
        layer.name: base + delta
        for (layer, _, _), delta in zip(weights, deltas)
    }


def greedy_allocation(
    layers: Sequence[LayerBudget],
    nmult: int,
    variance_budget: float,
    enob_min: float = 2.0,
    enob_max: float = 16.0,
    step: float = 0.5,
) -> Dict[str, float]:
    """Piecewise-aware allocation by greedy half-bit water-filling.

    Starts every layer at ``enob_min`` and repeatedly grants ``step``
    bits to the layer with the best variance-reduction-per-pJ ratio
    until the total variance meets the budget.  Uses the *actual*
    two-branch :func:`~repro.energy.adc.adc_energy`, so bits below the
    knee (which cost nothing) are granted first.
    """
    if variance_budget <= 0:
        raise ConfigError("variance budget must be positive")
    enobs = {layer.name: enob_min for layer in layers}
    by_name = {layer.name: layer for layer in layers}

    def total_variance() -> float:
        return sum(
            by_name[name].error_variance(e, nmult)
            for name, e in enobs.items()
        )

    max_steps = int((enob_max - enob_min) / step) * len(layers) + 1
    for _ in range(max_steps):
        if total_variance() <= variance_budget:
            break
        best_name = None
        best_ratio = -1.0
        for name, enob in enobs.items():
            if enob + step > enob_max:
                continue
            layer = by_name[name]
            gain = layer.error_variance(enob, nmult) - layer.error_variance(
                enob + step, nmult
            )
            cost = layer.energy_pj(enob + step, nmult) - layer.energy_pj(
                enob, nmult
            )
            ratio = gain / max(cost, 1e-12)
            if ratio > best_ratio:
                best_ratio = ratio
                best_name = name
        if best_name is None:
            raise ConfigError(
                "variance budget unreachable within enob_max"
            )
        enobs[best_name] += step
    else:
        raise ConfigError("allocation did not converge")
    return enobs


def allocation_energy(
    layers: Sequence[LayerBudget], enobs: Dict[str, float], nmult: int
) -> float:
    """Total conversion energy (pJ/inference) of an allocation."""
    return sum(layer.energy_pj(enobs[layer.name], nmult) for layer in layers)


def allocation_variance(
    layers: Sequence[LayerBudget], enobs: Dict[str, float], nmult: int
) -> float:
    """Total injected variance of an allocation."""
    return sum(
        layer.error_variance(enobs[layer.name], nmult) for layer in layers
    )


def set_layer_enobs(model: Module, enobs: Sequence[float]) -> int:
    """Assign per-layer ENOBs to a model's AMS injectors, in order.

    ``enobs`` must have one entry per :class:`AMSErrorInjector` in
    module-definition order.  Returns the number of injectors updated.
    """
    injectors: List[AMSErrorInjector] = [
        m for m in model.modules() if isinstance(m, AMSErrorInjector)
    ]
    if len(enobs) != len(injectors):
        raise ConfigError(
            f"got {len(enobs)} enobs for {len(injectors)} injectors"
        )
    for injector, enob in zip(injectors, enobs):
        old = injector.config
        injector.set_config(
            VMACConfig(
                enob=float(enob), nmult=old.nmult, bw=old.bw, bx=old.bx
            )
        )
    return len(injectors)
