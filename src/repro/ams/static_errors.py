"""Static (per-device) AMS errors: mismatch, gain and offset.

The paper's model covers additive, data-independent noise re-sampled on
every conversion.  It explicitly defers "non-additive and data-dependent
errors (due to, for example, capacitor or resistor mismatch)" and "the
impact of variations in process, voltage, and temperature" to future
work.  This module supplies the simplest useful model of that class:

- every output channel of every VMAC array gets a *fixed* gain error
  ``g ~ N(1, gain_std)`` and offset error ``o ~ N(0, offset_std)``
  (in product units), drawn once per *device* from a chip seed;
- the same device keeps its errors across all evaluations, so accuracy
  can be measured per-chip and summarized across a population — the
  yield-style analysis a hardware team actually runs.

Unlike the dynamic noise, static errors are visible to batch norm (they
are stable statistics), so retraining/recalibration can cancel much of
them; the ``pvt`` ablation measures exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.nn.container import Sequential
from repro.nn.module import Module
from repro.quant.qmodules import QuantConv2d, QuantLinear
from repro.tensor.functional import add_forward_noise
from repro.tensor.tensor import Tensor
from repro.utils.rng import new_rng, seed_sequence


@dataclass(frozen=True)
class DeviceVariation:
    """A device-level static error distribution.

    Attributes
    ----------
    gain_std:
        Std of the multiplicative per-channel gain error around 1
        (e.g. 0.02 for 2% channel-to-channel mismatch).
    offset_std:
        Std of the additive per-channel offset, in product units (the
        scale of a single weight-activation product).
    seed:
        Chip identity; two transforms with the same seed produce the
        same device.
    """

    gain_std: float = 0.0
    offset_std: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.gain_std < 0 or self.offset_std < 0:
            raise ConfigError("error stds cannot be negative")


class StaticChannelError(Module):
    """Fixed per-output-channel gain/offset applied after a compute layer.

    The forward value becomes ``gain * x + offset`` (broadcast over the
    channel axis); the backward pass is that of the error-free layer
    (straight-through at the layer level), matching how the dynamic
    injector treats the hardware abstraction.
    """

    def __init__(self, gain: np.ndarray, offset: np.ndarray):
        super().__init__()
        self.gain = gain.astype(np.float32)
        self.offset = offset.astype(np.float32)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim == 4:
            gain = self.gain.reshape(1, -1, 1, 1)
            offset = self.offset.reshape(1, -1, 1, 1)
        else:
            gain = self.gain.reshape(1, -1)
            offset = self.offset.reshape(1, -1)
        distorted = x.data * gain + offset
        return add_forward_noise(x, distorted - x.data)

    def __repr__(self) -> str:
        return (
            f"StaticChannelError(channels={self.gain.size}, "
            f"gain_range=[{self.gain.min():.3f}, {self.gain.max():.3f}])"
        )


def apply_device_variation(model: Module, variation: DeviceVariation) -> int:
    """Attach static channel errors after every quantized compute layer.

    Walks the model and inserts a :class:`StaticChannelError` directly
    after each :class:`QuantConv2d` / :class:`QuantLinear` by wrapping
    the pair in a Sequential.  Wrapping changes parameter paths, so
    **load weights before applying**; apply to a fresh model per device
    (re-applying would wrap twice).  Returns the number of layers
    affected.
    """
    rng = new_rng(variation.seed)
    affected = 0
    for module in list(model.modules()):
        for name, child in list(module._modules.items()):
            if isinstance(child, (QuantConv2d, QuantLinear)):
                channels = (
                    child.out_channels
                    if isinstance(child, QuantConv2d)
                    else child.out_features
                )
                gain = rng.normal(1.0, variation.gain_std, channels)
                offset = rng.normal(0.0, variation.offset_std, channels)
                setattr(
                    module,
                    name,
                    Sequential(child, StaticChannelError(gain, offset)),
                )
                affected += 1
    if affected == 0:
        raise ConfigError("model has no quantized compute layers")
    return affected


def population_accuracy(
    build_and_evaluate,
    variation: DeviceVariation,
    devices: int = 5,
) -> List[float]:
    """Accuracy of ``devices`` simulated chips.

    ``build_and_evaluate(device_variation)`` must construct a fresh
    model, apply the given per-device variation, and return its
    accuracy; this helper just fans the chip seeds out.
    """
    if devices < 1:
        raise ConfigError("need at least one device")
    seq = seed_sequence(variation.seed)
    results = []
    for child in seq.spawn(devices):
        chip_seed = int(child.generate_state(1)[0])
        chip = DeviceVariation(
            gain_std=variation.gain_std,
            offset_std=variation.offset_std,
            seed=chip_seed,
        )
        results.append(float(build_and_evaluate(chip)))
    return results
