"""Multiplication partitioning (paper Section 4, first hardware method).

"One method, based on long multiplication, is to partition each multiply
into several multiplies with smaller operands, then add the
appropriately shifted results in the digital domain. ... splitting the
weight into NW parts and the activation into NX parts would require
NW*NX multiplications of BW/NW-bit and BX/NX-bit numbers."

Model
-----
Following the paper's framing ("BW/NW-bit ... numbers"), the BW weight
bits are split into ``NW`` contiguous groups (MSB group first, carrying
the sign) and likewise for the activation.  Partial product (i, j)
carries a significance shift of
``offset_w[i] + offset_x[j]`` bits relative to the full product, so when
its conversion error (an ENOB-derived LSB at the *partial's* full scale)
is referred back to full-product units it is scaled by
``2^-(offset_i + offset_j)``.  Errors of distinct partials are
independent, so variances add.

Energy: each of the ``Ntot/Nmult`` VMACs now performs ``NW * NX``
conversions, each at the (lower) partial resolution; optionally the
least-significant partials use an even lower resolution
(``low_significance_enob``), the paper's "further saving energy" knob.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.ams.vmac import VMACConfig
from repro.errors import ConfigError


@dataclass(frozen=True)
class PartitionScheme:
    """A long-multiplication partitioning of the VMAC operands.

    Attributes
    ----------
    config:
        Base VMAC configuration (``bw``/``bx`` are the operand widths
        being partitioned; ``config.enob`` is the per-partial ADC
        resolution).
    nw, nx:
        Number of weight / activation partitions.  ``bw`` and ``bx``
        must divide evenly (the paper's BW/NW-bit operands).
    low_significance_enob:
        Optional reduced resolution used for every partial except the
        most significant one (i == j == 0).
    """

    config: VMACConfig
    nw: int = 2
    nx: int = 2
    low_significance_enob: Optional[float] = None

    def __post_init__(self):
        if self.nw < 1 or self.nx < 1:
            raise ConfigError("nw and nx must be >= 1")
        if self.config.bw % self.nw != 0:
            raise ConfigError(
                f"bw={self.config.bw} not divisible by nw={self.nw}"
            )
        if self.config.bx % self.nx != 0:
            raise ConfigError(
                f"bx={self.config.bx} not divisible by nx={self.nx}"
            )

    @property
    def weight_chunk_bits(self) -> int:
        return self.config.bw // self.nw

    @property
    def activation_chunk_bits(self) -> int:
        return self.config.bx // self.nx

    def partial_offsets(self) -> List[Tuple[int, int, int]]:
        """Yield ``(i, j, shift_bits)`` for every partial product.

        ``shift_bits`` is the right-shift of partial (i, j) relative to
        the full product: MSB chunks have shift 0.
        """
        wc, xc = self.weight_chunk_bits, self.activation_chunk_bits
        return [
            (i, j, i * wc + j * xc)
            for i in range(self.nw)
            for j in range(self.nx)
        ]

    def partial_enob(self, i: int, j: int) -> float:
        """ADC resolution used for partial (i, j)."""
        if self.low_significance_enob is not None and (i, j) != (0, 0):
            return self.low_significance_enob
        return self.config.enob

    @property
    def conversions_per_vmac(self) -> int:
        return self.nw * self.nx

    def partial_lossless_bits(self) -> float:
        """Resolution at which a partial's conversion becomes exact.

        This is the paper's reason partitioning helps: "the full
        precision of any partial product is smaller than that of the
        whole product, [so] a lower-resolution ADC could be used ...
        while still incurring less injected error overall."  A chunk
        product has ``wc + xc - 2`` magnitude bits plus sign, and the
        analog sum over Nmult adds ``log2(Nmult)`` (the Fig. 2
        bookkeeping applied to the chunk widths).
        """
        return (
            self.weight_chunk_bits
            + self.activation_chunk_bits
            - 2
            + 1
            + math.log2(self.config.nmult)
        )


def partitioned_error_std(scheme: PartitionScheme, ntot: int) -> float:
    """Total injected error std at a conv output under partitioning.

    Referred to full-product units (same scale as
    :func:`repro.ams.vmac.total_error_std`), so the two are directly
    comparable.  A partial converted at or above its lossless
    resolution (:meth:`PartitionScheme.partial_lossless_bits`)
    contributes zero error.
    """
    if ntot < 1:
        raise ConfigError(f"ntot must be >= 1, got {ntot}")
    nmult = scheme.config.nmult
    lossless = scheme.partial_lossless_bits()
    var_per_vmac = 0.0
    for i, j, shift in scheme.partial_offsets():
        enob = scheme.partial_enob(i, j)
        if enob >= lossless:
            continue
        # Per-partial conversion error at the partial's scale, referred
        # back to full-product units by the significance shift.
        lsb = nmult * 2.0 ** (-(enob - 1.0)) * 2.0 ** (-shift)
        var_per_vmac += lsb * lsb / 12.0
    return math.sqrt((ntot / nmult) * var_per_vmac)


def partitioned_energy(
    scheme: PartitionScheme, adc_energy_fn: Callable[[float], float]
) -> float:
    """Energy per MAC under partitioning (pJ).

    ``adc_energy_fn`` maps ENOB to energy per conversion (e.g.
    :func:`repro.energy.adc.adc_energy`).  Each MAC's share is
    ``sum(E_ADC(partial ENOBs)) / Nmult``.
    """
    total = sum(
        adc_energy_fn(scheme.partial_enob(i, j))
        for i, j, _ in scheme.partial_offsets()
    )
    return total / scheme.config.nmult


def equivalent_unpartitioned_enob(scheme: PartitionScheme, ntot: int) -> float:
    """ENOB of a single-conversion VMAC with the same injected error.

    Inverts Eq. 2: lets Fig. 8-style lookups reuse accuracy measurements
    taken with the lumped model.
    """
    std = partitioned_error_std(scheme, ntot)
    nmult = scheme.config.nmult
    if std == 0.0:
        # Lossless partitioned conversion: equivalent to an ADC that
        # captures the full ideal precision (Fig. 2 bookkeeping).
        cfg = scheme.config
        return cfg.bw + cfg.bx - 2 + 1 + math.log2(nmult)
    # std = sqrt(ntot/nmult) * nmult * 2^-(enob-1) / sqrt(12)
    inner = std * math.sqrt(12.0) / (math.sqrt(ntot / nmult) * nmult)
    return 1.0 - math.log2(inner)
