"""The built-in error-model zoo (registered on import).

Each class wires existing AMS math into the forward path through the
:class:`~repro.ams.models.ErrorModel` interface:

=====================  ==================================================
``per_vmac``           Paper §5: per-conversion uniform error, summed
                       at the digital accumulator (non-Gaussian tails).
``partitioned``        Paper §4/§5 long-multiplication partitioning —
                       :func:`repro.ams.partitioning.partitioned_error_std`.
``reference_scaled``   Paper §4/§5 ADC reference scaling — Gaussian
                       shrunk by ``alpha`` plus clipping at the reduced
                       full scale (:mod:`repro.ams.reference_scaling`).
``state_dependent``    Xiao et al., *On the Accuracy of Analog Neural
                       Network Inference Accelerators*: noise magnitude
                       grows with the activation magnitude.
``tile_correlated``    Luquin et al., *Rapid yet accurate Tile-circuit
                       and device modeling*: one shared error component
                       per physical tile of output channels
                       (:mod:`repro.ams.tiled` geometry) plus an i.i.d.
                       residual.
=====================  ==================================================

Every model draws exclusively through the host's
:class:`~repro.ams.models.NoiseStreams` (the tier-1
``tools/errmodel_lint.py`` check) and keeps per-row draws confined to
that row's generator, so serve-mode noise stays a pure function of the
request stream at any batch composition.
"""

from __future__ import annotations

import math

import numpy as np

from repro.ams.models import ErrorModel, ErrorModelContext, register_model
from repro.ams.partitioning import PartitionScheme, partitioned_error_std
from repro.ams.vmac import total_error_std, vmac_lsb
from repro.errors import ConfigError

__all__ = [
    "PerVMAC",
    "Partitioned",
    "ReferenceScaled",
    "StateDependent",
    "TileCorrelated",
]


@register_model
class PerVMAC(ErrorModel):
    """Per-VMAC uniform conversion error, summed at the accumulator.

    The paper's §5 proposal of "injecting error at each VMAC output":
    each output activation accumulates ``ceil(ntot/nmult)`` separate
    conversions, and each conversion contributes an independent uniform
    error in ``[-LSB/2, +LSB/2)`` (the quantization-error model behind
    Eq. 1).  The sum matches Eq. 2's variance — with ``ntot/nmult``
    rounded *up* to whole conversions, the physical count — but is only
    asymptotically Gaussian: at small ``ntot/nmult`` the distribution
    keeps the uniform sum's bounded support and light tails, exactly
    the structure the lumped model approximates away.
    """

    name = "per_vmac"

    def _n_vmac(self, ctx: ErrorModelContext) -> int:
        return -(-ctx.ntot // ctx.config.nmult)

    def nominal_std(self, ctx: ErrorModelContext) -> float:
        lsb = vmac_lsb(ctx.config.enob, ctx.config.nmult)
        return math.sqrt(self._n_vmac(ctx)) * lsb / math.sqrt(12.0)

    def sample(self, shape, streams, ctx) -> np.ndarray:
        n_vmac = self._n_vmac(ctx)
        lsb = vmac_lsb(ctx.config.enob, ctx.config.nmult)
        acc = ctx.pool.get(shape, np.float64)
        streams.fill_uniform(acc)
        if n_vmac > 1:
            tmp = ctx.pool.get(shape, np.float64)
            for _ in range(n_vmac - 1):
                streams.fill_uniform(tmp)
                acc += tmp
            ctx.pool.release(tmp)
        acc -= 0.5 * n_vmac
        acc *= lsb
        return acc


@register_model
class Partitioned(ErrorModel):
    """Long-multiplication partitioning error (paper §4).

    The operands are split into ``nw`` weight and ``nx`` activation
    chunks; each of the ``nw * nx`` partial products converts at the
    partial's full scale and the shifted errors add in the digital
    domain.  The lumped network-level effect is still a zero-mean
    Gaussian, but with :func:`~repro.ams.partitioning.
    partitioned_error_std`'s significance-weighted variance instead of
    Eq. 2's — ``low_enob`` reproduces the paper's "further saving
    energy" knob of converting low-significance partials coarsely.
    """

    name = "partitioned"

    def __init__(self, nw: int = 2, nx: int = 2, low_enob: float = None):
        if nw < 1 or nx < 1:
            raise ConfigError(f"nw and nx must be >= 1, got ({nw}, {nx})")
        self.nw = int(nw)
        self.nx = int(nx)
        self.low_enob = None if low_enob is None else float(low_enob)

    def _scheme(self, ctx: ErrorModelContext) -> PartitionScheme:
        return PartitionScheme(
            ctx.config,
            nw=self.nw,
            nx=self.nx,
            low_significance_enob=self.low_enob,
        )

    def nominal_std(self, ctx: ErrorModelContext) -> float:
        return partitioned_error_std(self._scheme(ctx), ctx.ntot)

    def sample(self, shape, streams, ctx) -> np.ndarray:
        draw = ctx.pool.get(shape, np.float64)
        streams.fill_standard_normal(draw)
        draw *= ctx.nominal_std
        return draw


@register_model
class ReferenceScaled(ErrorModel):
    """ADC reference scaling: finer LSB, clipped dynamic range (paper §4).

    Scaling the ADC reference by ``alpha < 1`` shrinks the LSB — and
    hence the Eq. 2 Gaussian — by ``alpha``, at the price of clipping
    accumulated values beyond ``alpha`` of the full scale
    (:func:`repro.ams.reference_scaling.clipped_quantize` is the
    per-conversion version of the same trade).  At the lumped network
    level the full scale of an accumulated output is ``ntot`` (operands
    live in [-1, 1]), so the injected error is the clipping residual
    ``clip(pre, ±alpha*ntot) - pre`` plus a Gaussian of
    ``alpha * total_error_std``.  Data-dependent: the clipping term
    needs the pre-activation, so the fast backend declines and the
    reference backend/interpreter run it.
    """

    name = "reference_scaled"
    data_dependent = True

    def __init__(self, alpha: float = 0.5):
        if not 0.0 < alpha <= 1.0:
            raise ConfigError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)

    def nominal_std(self, ctx: ErrorModelContext) -> float:
        return self.alpha * total_error_std(
            ctx.config.enob, ctx.config.nmult, ctx.ntot
        )

    def sample(self, shape, streams, ctx) -> np.ndarray:
        pre = ctx.require_pre(self.name)
        draw = ctx.pool.get(shape, np.float64)
        streams.fill_standard_normal(draw)
        draw *= ctx.nominal_std
        full_scale = self.alpha * ctx.ntot
        clipped = ctx.pool.get(shape, np.float64)
        np.clip(pre, -full_scale, full_scale, out=clipped)
        clipped -= pre
        draw += clipped
        ctx.pool.release(clipped)
        return draw


@register_model
class StateDependent(ErrorModel):
    """State-dependent magnitude noise (Xiao et al.).

    Analog conductance/parasitic error grows with the signal: the
    per-element standard deviation is

        ``sigma(x) = nominal_std * (floor + slope * |x| / sqrt(ntot))``

    where ``x`` is the accumulated pre-activation and ``sqrt(ntot)``
    normalizes its typical magnitude, so ``floor`` sets the
    signal-independent fraction (the Eq. 2 lumped part) and ``slope``
    how fast error tracks activation energy.  Data-dependent: the fast
    backend declines ops hosting this model.
    """

    name = "state_dependent"
    data_dependent = True

    def __init__(self, floor: float = 0.5, slope: float = 1.0):
        if floor < 0.0 or slope < 0.0:
            raise ConfigError(
                f"floor and slope must be >= 0, got ({floor}, {slope})"
            )
        if floor == 0.0 and slope == 0.0:
            raise ConfigError("floor and slope cannot both be 0")
        self.floor = float(floor)
        self.slope = float(slope)

    def nominal_std(self, ctx: ErrorModelContext) -> float:
        return total_error_std(ctx.config.enob, ctx.config.nmult, ctx.ntot)

    def sample(self, shape, streams, ctx) -> np.ndarray:
        pre = ctx.require_pre(self.name)
        draw = ctx.pool.get(shape, np.float64)
        streams.fill_standard_normal(draw)
        sigma = ctx.pool.get(shape, np.float64)
        np.absolute(pre, out=sigma)
        sigma *= self.slope / math.sqrt(ctx.ntot)
        sigma += self.floor
        sigma *= ctx.nominal_std
        draw *= sigma
        ctx.pool.release(sigma)
        return draw


@register_model
class TileCorrelated(ErrorModel):
    """Tile-level spatially correlated noise (Luquin et al.).

    Output channels are produced by physical tiles of ``tile_size``
    VMAC columns (the :class:`~repro.ams.tiled.TiledVMACConv2d`
    geometry); channels sharing a tile also share its ADC, references
    and thermal environment, so their errors correlate.  Per batch row:

        ``noise = std * (sqrt(rho) * z_tile + sqrt(1 - rho) * z_elem)``

    where ``z_tile`` is one standard-normal draw per tile, broadcast
    over the tile's channels (and all spatial positions), and
    ``z_elem`` is i.i.d. per element.  Every element keeps variance
    ``std**2``; ``rho`` is the intra-tile correlation coefficient.

    RNG streams: in serve mode both components come sequentially from
    the row's request generator (noise stays a pure function of the
    request stream); in batch mode ``z_tile`` draws from the dedicated
    ``"tile"`` extra stream — captured and restored by
    :mod:`repro.ckpt` checkpoints — and ``z_elem`` from the main one.
    """

    name = "tile_correlated"
    extra_streams = ("tile",)

    def __init__(self, tile_size: int = 8, rho: float = 0.5):
        if tile_size < 1:
            raise ConfigError(f"tile_size must be >= 1, got {tile_size}")
        if not 0.0 <= rho <= 1.0:
            raise ConfigError(f"rho must be in [0, 1], got {rho}")
        self.tile_size = int(tile_size)
        self.rho = float(rho)

    def nominal_std(self, ctx: ErrorModelContext) -> float:
        return total_error_std(ctx.config.enob, ctx.config.nmult, ctx.ntot)

    def sample(self, shape, streams, ctx) -> np.ndarray:
        if len(shape) < 2:
            raise ConfigError(
                f"tile_correlated needs (batch, channels, ...) shapes, "
                f"got {shape}"
            )
        rows, channels = shape[0], shape[1]
        tiles = -(-channels // self.tile_size)
        c_tile = math.sqrt(self.rho)
        c_elem = math.sqrt(1.0 - self.rho)
        draw = ctx.pool.get(shape, np.float64)
        if streams.per_row:
            # Per request: tile commons first, then the i.i.d. field,
            # both from the row's own generator.
            for row, gen in zip(draw, streams.row_generators(rows)):
                common = gen.standard_normal(tiles)
                gen.standard_normal(out=row)
                self._combine(row, common, channels, c_tile, c_elem)
        else:
            tile_gen = streams.extra_generator("tile")
            commons = tile_gen.standard_normal((rows, tiles))
            streams.fill_standard_normal(draw)
            for row, common in zip(draw, commons):
                self._combine(row, common, channels, c_tile, c_elem)
        draw *= ctx.nominal_std
        return draw

    def _combine(self, row, common, channels, c_tile, c_elem) -> None:
        """``row = c_elem*row + c_tile*common`` broadcast per channel tile."""
        expanded = np.repeat(common, self.tile_size)[:channels]
        shaped = expanded.reshape((channels,) + (1,) * (row.ndim - 1))
        row *= c_elem
        row += c_tile * shaped
