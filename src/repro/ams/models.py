"""Pluggable AMS error models: interface, registry, and the host injector.

The paper's main experiments inject one lumped Gaussian at each
accumulated convolution/linear output (Eq. 2).  Its Section 5 — and the
related work it points at — call for richer error shapes: per-VMAC
injection, multiplication partitioning, ADC reference scaling,
state-dependent magnitude noise (Xiao et al.) and tile-level spatially
correlated noise (Luquin et al.).  This module turns the injector into
a *host* for any such model:

- :class:`ErrorModel` — the small interface a model implements:
  ``sample(shape, streams, ctx) -> noise`` plus declared state needs
  (``data_dependent`` for models that read the pre-activation,
  ``extra_streams`` for models needing their own persistent
  generators, ``compiled_safe`` for models the compiled executor may
  not fuse).
- the registry — :func:`register_model`, :func:`get_model`,
  :func:`list_models`; unknown names fail fast with a did-you-mean.
- :class:`AMSErrorInjector` — the module placed after a (quantized)
  convolution or linear layer.  It owns the RNG streams, the policy
  and the buffer-pool plumbing; the model owns the math.
- :func:`make_injector` — the canonical constructor, resolving models
  through the registry.

The paper's lumped Gaussian is the :class:`LumpedGaussian` reference
implementation (``"lumped_gaussian"``); its draws are bit-identical to
the historical hard-coded injector.  The built-in zoo of richer models
lives in :mod:`repro.ams.zoo` and registers itself on import.

All randomness inside ``repro/ams/`` must flow through
:class:`NoiseStreams` (``tools/errmodel_lint.py`` forbids bare
``np.random`` calls in this package as a tier-1 check) so that the
trainer, the compiled executor and the serving engine's per-request
row generators all see exactly the streams the host attached.
"""

from __future__ import annotations

import difflib
import inspect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.ams.vmac import VMACConfig, total_error_std
from repro.errors import ConfigError
from repro.nn.module import Module
from repro.obs.deprecation import warn_once
from repro.tensor.functional import add_forward_noise
from repro.tensor.pool import default_pool
from repro.tensor.tensor import Tensor
from repro.utils import profiler as _profiler
from repro.utils.rng import entropy_rng, new_rng

__all__ = [
    "AMSErrorInjector",
    "ErrorModel",
    "ErrorModelContext",
    "InjectionPolicy",
    "LumpedGaussian",
    "NoiseStreams",
    "get_model",
    "list_models",
    "make_injector",
    "model_params",
    "register_model",
]


@dataclass(frozen=True)
class InjectionPolicy:
    """When the injector adds error.

    Attributes
    ----------
    in_training:
        Inject during training forward passes.  Retraining with AMS
        error in the loop sets this True everywhere except the last
        layer (the paper's workaround).
    in_eval:
        Inject during evaluation.  Always True when modeling hardware;
        set False to measure the error-free quantized baseline.
    """

    in_training: bool = True
    in_eval: bool = True

    @staticmethod
    def eval_only() -> "InjectionPolicy":
        """Error at evaluation time only (paper Figs. 4-5, dashed series)."""
        return InjectionPolicy(in_training=False, in_eval=True)

    @staticmethod
    def disabled() -> "InjectionPolicy":
        return InjectionPolicy(in_training=False, in_eval=False)


class ErrorModelContext:
    """What the host injector knows at sampling time.

    Attributes
    ----------
    config:
        The layer's VMAC parameters (ENOB, Nmult, operand widths).
    ntot:
        Multiplications per output activation of the preceding layer.
    nominal_std:
        The injector's live ``error_std`` — the model's
        :meth:`ErrorModel.nominal_std` at construction, but mutable by
        allocation tooling (``set_layer_enobs``) afterwards, so models
        scale their draws by this, not by a recomputed value.
    pool:
        Buffer pool for scratch; models must release what they get
        (except the one buffer they return, which the host owns).
    pre:
        The pre-activation array the noise will be added to, or
        ``None`` on paths that pre-draw noise by shape alone (the fast
        backend).  ``data_dependent`` models call :meth:`require_pre`.
    """

    __slots__ = ("config", "ntot", "nominal_std", "pool", "pre")

    def __init__(
        self,
        config: VMACConfig,
        ntot: int,
        nominal_std: float = 0.0,
        pool=None,
        pre: Optional[np.ndarray] = None,
    ):
        self.config = config
        self.ntot = ntot
        self.nominal_std = nominal_std
        self.pool = pool
        self.pre = pre

    def require_pre(self, model_name: str) -> np.ndarray:
        """The pre-activation, or a ConfigError naming the model."""
        if self.pre is None:
            raise ConfigError(
                f"error model {model_name!r} is data-dependent but this "
                "execution path supplied no pre-activation; only the "
                "interpreter and the reference backend can run it"
            )
        return self.pre


class NoiseStreams:
    """The RNG surface handed to :meth:`ErrorModel.sample`.

    Wraps the injector's persistent generator (training, repeated
    evaluation), the per-batch-row generators the serving engine
    attaches for per-request determinism, and any extra named streams
    the model declared via :attr:`ErrorModel.extra_streams`.  Models
    draw only through this object — never from ``np.random`` directly
    (``tools/errmodel_lint.py`` enforces this), which is what keeps
    interpreter/compiled/serve draws stream-for-stream identical.
    """

    __slots__ = ("rng", "row_rngs", "extra")

    def __init__(
        self,
        rng: np.random.Generator,
        row_rngs: Optional[Sequence[np.random.Generator]] = None,
        extra: Optional[Dict[str, np.random.Generator]] = None,
    ):
        self.rng = rng
        self.row_rngs = row_rngs
        self.extra = extra or {}

    @property
    def per_row(self) -> bool:
        """True when the host attached one generator per batch row."""
        return self.row_rngs is not None

    def _check_rows(self, rows: int) -> None:
        if self.row_rngs is not None and len(self.row_rngs) != rows:
            raise ConfigError(
                f"{len(self.row_rngs)} row generators for a batch "
                f"of {rows}"
            )

    def fill_standard_normal(self, out: np.ndarray) -> None:
        """Fill ``out`` with N(0, 1) draws, row-per-stream when attached.

        Chunking the buffer by row keeps the value sequence identical
        to one whole-buffer draw from the same generator, so batch mode
        and the single-stream case stay bit-compatible.
        """
        if self.row_rngs is not None:
            self._check_rows(out.shape[0])
            for row, row_rng in zip(out, self.row_rngs):
                row_rng.standard_normal(out=row)
        else:
            self.rng.standard_normal(out=out)

    def fill_uniform(self, out: np.ndarray) -> None:
        """Fill ``out`` with U[0, 1) draws, row-per-stream when attached."""
        if self.row_rngs is not None:
            self._check_rows(out.shape[0])
            for row, row_rng in zip(out, self.row_rngs):
                row_rng.random(out=row)
        else:
            self.rng.random(out=out)

    def row_generators(self, rows: int) -> List[np.random.Generator]:
        """One generator per batch row.

        In per-row mode these are the attached request streams; in
        batch mode every row shares the main generator (sequential
        per-row draws from one generator equal one whole-buffer draw).
        """
        if self.row_rngs is not None:
            self._check_rows(rows)
            return list(self.row_rngs)
        return [self.rng] * rows

    def extra_generator(self, name: str) -> np.random.Generator:
        """The model's dedicated persistent stream (batch mode only).

        In per-row mode models must draw everything from the row's own
        generator instead, so a request's noise stays a pure function
        of its request stream.
        """
        if name not in self.extra:
            raise ConfigError(
                f"no extra RNG stream {name!r}; the injector was built "
                "for a model declaring extra_streams="
                f"{sorted(self.extra) or '()'}"
            )
        return self.extra[name]


class ErrorModel:
    """One hardware error shape, injectable at an accumulated output.

    Subclasses set :attr:`name`, the declaration flags below, and
    implement :meth:`nominal_std` / :meth:`sample`.  Constructor
    keyword arguments are the model's user-facing parameters — the
    registry validates parameter names against the constructor
    signature (see :func:`get_model`), and values belong in plain
    attributes so ``repr`` stays informative.

    Declarations
    ------------
    data_dependent:
        The model reads the pre-activation (``ctx.pre``).  The fast
        backend pre-draws noise by shape before its GEMM, so it
        declines ops whose model is data-dependent; the reference
        backend and the interpreter supply ``pre``.
    compiled_safe:
        ``False`` makes lowering raise a
        :class:`~repro.errors.CompileError` tagged
        ``reason="error_model"`` — the run falls back to the
        interpreter, counted and warned once (never silently).
    extra_streams:
        Names of persistent generators the host injector must own on
        top of its main stream (e.g. a per-tile stream).  They are
        spawned from the injector's generator, reseeded alongside it,
        and captured/restored by :mod:`repro.ckpt` checkpoints.
    """

    name: str = ""
    data_dependent: bool = False
    compiled_safe: bool = True
    extra_streams: Tuple[str, ...] = ()

    def nominal_std(self, ctx: ErrorModelContext) -> float:
        """The model's scalar noise scale for (config, ntot).

        Computed once at injector construction (and again by
        ``AMSErrorInjector.set_config``); ``0.0`` disables injection
        entirely, matching the historical ``error_std == 0`` shortcut.
        """
        raise NotImplementedError

    def sample(
        self, shape: Tuple[int, ...], streams: NoiseStreams,
        ctx: ErrorModelContext,
    ) -> np.ndarray:
        """Draw one batch of error samples into a pooled float64 buffer.

        The caller owns (and must release) the returned buffer.  All
        randomness must come from ``streams``; all scratch from
        ``ctx.pool``.  Per-row draws must touch only that row's
        generator so serve-mode noise stays batch-composition
        independent.
        """
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human description (first docstring line)."""
        doc = inspect.getdoc(type(self)) or ""
        return doc.splitlines()[0] if doc else self.name

    def __repr__(self) -> str:
        params = ", ".join(
            f"{key}={getattr(self, key)!r}" for key in model_params(type(self))
            if hasattr(self, key)
        )
        return f"{type(self).__name__}({params})"


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[ErrorModel]] = {}


def register_model(cls: Type[ErrorModel]) -> Type[ErrorModel]:
    """Class decorator adding an :class:`ErrorModel` to the registry."""
    name = getattr(cls, "name", "")
    if not name:
        raise ConfigError(
            f"error model {cls.__name__} must set a non-empty 'name'"
        )
    if name in _REGISTRY and _REGISTRY[name] is not cls:
        raise ConfigError(f"error model {name!r} is already registered")
    _REGISTRY[name] = cls
    return cls


def _ensure_builtins() -> None:
    # The built-in zoo registers itself on import; imported lazily so
    # this module stays importable from the zoo without a cycle.
    import repro.ams.zoo  # noqa: F401


def list_models() -> List[str]:
    """Sorted names of every registered error model."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def model_params(cls: Type[ErrorModel]) -> List[str]:
    """The user-facing parameter names of a model class."""
    if cls.__init__ is object.__init__:
        return []
    sig = inspect.signature(cls.__init__)
    return [
        name
        for name, param in sig.parameters.items()
        if name != "self"
        and param.kind
        not in (param.VAR_POSITIONAL, param.VAR_KEYWORD)
    ]


def get_model(name: str, params: Optional[dict] = None) -> ErrorModel:
    """Instantiate a registered error model by name.

    Unknown names and unknown parameter keys both raise
    :class:`~repro.errors.ConfigError` with a did-you-mean suggestion;
    value errors surface from the model's own constructor.
    """
    _ensure_builtins()
    if name not in _REGISTRY:
        options = sorted(_REGISTRY)
        raise ConfigError(
            f"unknown error model {name!r}; registered: {options}"
            f"{_did_you_mean(name, options)}"
        )
    cls = _REGISTRY[name]
    kwargs = dict(params or {})
    valid = model_params(cls)
    unknown = sorted(set(kwargs) - set(valid))
    if unknown:
        hints = ", ".join(
            f"{key!r}{_did_you_mean(key, valid)}" for key in unknown
        )
        raise ConfigError(
            f"unknown parameter{'s' if len(unknown) > 1 else ''} {hints} "
            f"for error model {name!r}; valid: {valid}"
        )
    return cls(**kwargs)


def _did_you_mean(value: str, options: Sequence[str]) -> str:
    close = difflib.get_close_matches(value, options, n=1)
    return f" (did you mean {close[0]!r}?)" if close else ""


# ----------------------------------------------------------------------
# the reference model
# ----------------------------------------------------------------------
@register_model
class LumpedGaussian(ErrorModel):
    """The paper's lumped Gaussian at the accumulated output (Eq. 2).

    All VMAC errors contributing to one output activation are lumped
    "to the output of the digital summation of multiple VMAC cell
    outputs" as one zero-mean Gaussian with
    ``std = sqrt(ntot/nmult) * LSB/sqrt(12)``.

    Bit-identity contract: the draw is a pooled float64
    ``standard_normal`` (whole-buffer, or chunked per attached row
    generator — the same value sequence) scaled in place, exactly the
    historical injector's op sequence, so every pre-registry noise
    stream reproduces draw for draw.
    """

    name = "lumped_gaussian"

    def nominal_std(self, ctx: ErrorModelContext) -> float:
        return total_error_std(ctx.config.enob, ctx.config.nmult, ctx.ntot)

    def sample(self, shape, streams, ctx) -> np.ndarray:
        draw = ctx.pool.get(shape, np.float64)
        streams.fill_standard_normal(draw)
        draw *= ctx.nominal_std
        return draw


# ----------------------------------------------------------------------
# the host injector
# ----------------------------------------------------------------------
class AMSErrorInjector(Module):
    """Additive AMS error at an accumulated dot-product output.

    The module the factories place immediately after a (quantized)
    convolution or linear layer, before batch norm (paper Fig. 3).  It
    hosts one :class:`ErrorModel`: the injector owns the RNG streams,
    the :class:`InjectionPolicy` and the pooled-buffer plumbing; the
    model owns the error math.

    Parameters
    ----------
    config:
        VMAC parameters (ENOB, Nmult).
    ntot:
        Multiplications per output activation of the preceding layer
        (``C_in * kh * kw`` for conv, ``in_features`` for linear).
    policy:
        When to inject (training / eval).
    rng:
        Noise generator; pass a spawned child generator per layer so
        runs are reproducible.
    model:
        An :class:`ErrorModel` instance or registered name.  Prefer
        :func:`make_injector`; constructing without a model is the
        legacy signature and warns once, then hosts
        ``"lumped_gaussian"``.
    model_params:
        Parameters forwarded to the registry when ``model`` is a name.

    Notes
    -----
    The error is sampled per output element per forward pass and added
    via a forward-only primitive, so the backward pass is exactly that
    of the noiseless graph (paper: "We inject this error during only
    the forward pass, leaving the backward pass untouched").
    """

    def __init__(
        self,
        config: VMACConfig,
        ntot: int,
        policy: InjectionPolicy = InjectionPolicy(),
        rng: Optional[np.random.Generator] = None,
        *,
        model=None,
        model_params: Optional[dict] = None,
    ):
        super().__init__()
        if ntot < 1:
            raise ConfigError(f"ntot must be >= 1, got {ntot}")
        if model is None:
            warn_once(
                "repro.ams.AMSErrorInjector.legacy-init",
                "constructing AMSErrorInjector without an error model is "
                "deprecated; use repro.ams.models.make_injector(), which "
                "resolves models through the registry",
            )
            model = get_model("lumped_gaussian", model_params)
        elif isinstance(model, str):
            model = get_model(model, model_params)
        elif model_params:
            raise ConfigError(
                "model_params only applies when 'model' is a registry "
                "name, not an ErrorModel instance"
            )
        self.model = model
        self.config = config
        self.ntot = ntot
        self.policy = policy
        self.rng = rng if rng is not None else entropy_rng()
        self.row_rngs: Optional[List[np.random.Generator]] = None
        self._extra: Dict[str, np.random.Generator] = {
            name: self.rng.spawn(1)[0] for name in model.extra_streams
        }
        self.error_std = model.nominal_std(self._static_ctx())

    def _static_ctx(self) -> ErrorModelContext:
        return ErrorModelContext(self.config, self.ntot)

    @property
    def active(self) -> bool:
        """Whether the current mode (train/eval) injects error."""
        return self.policy.in_training if self.training else self.policy.in_eval

    def set_config(self, config: VMACConfig) -> None:
        """Swap the VMAC parameters and recompute the model's scale.

        Allocation tooling (``set_layer_enobs``) retunes per-layer
        ENOBs through this, keeping ``error_std`` consistent with
        whatever model the injector hosts.
        """
        self.config = config
        self.error_std = self.model.nominal_std(self._static_ctx())

    def reseed(self, entropy) -> None:
        """Rebuild the main stream (and the model's extras) deterministically.

        ``entropy`` is a ``SeedSequence`` or anything
        ``np.random.default_rng`` accepts.  The main generator is
        seeded exactly as the historical ``injector.rng = default_rng(
        child)`` assignment; extra streams are spawned children of the
        same sequence (spawning does not perturb the parent's state, so
        models without extras reproduce legacy streams bit for bit).
        """
        seq = (
            entropy
            if isinstance(entropy, np.random.SeedSequence)
            else np.random.SeedSequence(entropy)
        )
        self.rng = new_rng(seq)
        if self._extra:
            names = list(self.model.extra_streams)
            self._extra = {
                name: new_rng(child)
                for name, child in zip(names, seq.spawn(len(names)))
            }

    def rng_streams(self) -> Dict[str, np.random.Generator]:
        """Every persistent generator this injector draws from, by name.

        The main stream is keyed ``""`` (checkpoints store it under the
        legacy ``module:<name>`` label so old checkpoints restore
        unchanged); extra streams use their declared names.
        """
        streams: Dict[str, np.random.Generator] = {"": self.rng}
        streams.update(self._extra)
        return streams

    def set_row_rngs(
        self, rngs: Optional[Sequence[np.random.Generator]]
    ) -> None:
        """Attach one noise generator per batch row (or ``None`` to clear).

        With row generators attached, the forward pass draws each
        sample's noise from its own stream, so a sample's error depends
        only on its generator — never on which other requests were
        coalesced into the same batch.  This is what lets the serving
        engine's dynamic micro-batcher stay reproducible per request at
        any concurrency (see :mod:`repro.serve.engine`).
        """
        self.row_rngs = list(rngs) if rngs is not None else None

    def sample_noise(self, shape, dtype, pool=None, pre=None) -> np.ndarray:
        """Draw one batch of error samples into a pooled buffer.

        The caller owns the returned buffer and must release it back to
        ``pool`` (default: the process pool).  This is the single
        RNG-consuming path shared by the interpreted forward and the
        compiled executor, which is what keeps their noise streams
        bit-identical.  ``pre`` is the pre-activation array for
        data-dependent models; paths that cannot supply it (the fast
        backend) must not host such models.
        """
        if pool is None:
            pool = default_pool()
        ctx = ErrorModelContext(
            self.config,
            self.ntot,
            nominal_std=self.error_std,
            pool=pool,
            pre=pre,
        )
        streams = NoiseStreams(self.rng, self.row_rngs, self._extra)
        draw = self.model.sample(tuple(shape), streams, ctx)
        if np.dtype(dtype) == np.float64:
            return draw
        # Pooled equivalent of ``.astype(dtype)``.
        noise = pool.get(tuple(shape), dtype)
        np.copyto(noise, draw, casting="unsafe")
        pool.release(draw)
        return noise

    def forward(self, x: Tensor) -> Tensor:
        if not self.active or self.error_std == 0.0:
            return x
        token = _profiler.op_start()
        pool = default_pool()
        noise = self.sample_noise(x.shape, x.dtype, pre=x.data)
        out = add_forward_noise(x, noise)
        # add_forward_noise stores x + noise in a fresh array; the
        # sample buffer itself is not referenced by the graph.
        pool.release(noise)
        _profiler.op_end(token, "ams.inject")
        return out

    def __repr__(self) -> str:
        return (
            f"AMSErrorInjector(model={self.model.name!r}, "
            f"enob={self.config.enob}, nmult={self.config.nmult}, "
            f"ntot={self.ntot}, std={self.error_std:.3e}, "
            f"policy={self.policy})"
        )


def make_injector(
    config: VMACConfig,
    ntot: int,
    *,
    policy: InjectionPolicy = InjectionPolicy(),
    rng: Optional[np.random.Generator] = None,
    model: str = "lumped_gaussian",
    model_params: Optional[dict] = None,
) -> AMSErrorInjector:
    """The canonical injector constructor: resolve ``model`` and host it.

    ``model`` is a registered error-model name (see
    :func:`list_models`); ``model_params`` its keyword parameters.
    Everything else matches the historical ``AMSErrorInjector``
    arguments.
    """
    return AMSErrorInjector(
        config,
        ntot,
        policy=policy,
        rng=rng,
        model=get_model(model, model_params),
    )
