"""VMAC error math: Eqs. 1-2 and the Fig. 2 precision bookkeeping.

Conventions
-----------
DoReFa bounds weights and activations to [-1, 1], so each pairwise
product lies in [-1, 1] and the analog dot product of ``Nmult`` pairs
lies in [-Nmult, Nmult] (full scale ``2 * Nmult``).  An ADC with
``ENOB_VMAC`` effective bits therefore has

    LSB = 2 * Nmult / 2^ENOB = Nmult * 2^-(ENOB - 1)          (Eq. 1 inner)

and, by definition of ENOB, an input-referred error with variance
``LSB^2 / 12`` regardless of the error's distribution [29].

A convolution output activation requires ``Ntot`` multiplications
(``C_in * kh * kw``), i.e. ``Ntot / Nmult`` VMAC invocations whose
digital outputs are summed losslessly.  Assuming i.i.d. per-VMAC errors,
the total error at the accumulated output is approximately Gaussian with

    Var(E_tot) = (Ntot / Nmult) * Var(E_VMAC)
               = Ntot * (sqrt(Nmult) * 2^-(ENOB-1))^2 / 12     (Eq. 2)

All values are expressed in "product units" (the scale where a single
weight-activation product spans [-1, 1]), which is exactly the scale of
the raw convolution output in a DoReFa-quantized network — so the noise
can be added directly to the convolution output tensor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class VMACConfig:
    """Parameters of the AMS VMAC unit (paper Fig. 1).

    Attributes
    ----------
    enob:
        Effective number of bits of the VMAC output conversion,
        representing *all* AMS error referred to the ADC input.  May be
        fractional (the paper sweeps half-bit steps).
    nmult:
        Number of D-to-A multipliers summed in the analog domain.
    bw, bx:
        Weight/activation bit widths of the digital inputs (used by the
        precision bookkeeping and the partitioning extension).
    """

    enob: float
    nmult: int
    bw: int = 8
    bx: int = 8

    def __post_init__(self):
        if self.enob <= 0:
            raise ConfigError(f"ENOB must be positive, got {self.enob}")
        if self.nmult < 1:
            raise ConfigError(f"Nmult must be >= 1, got {self.nmult}")
        if self.bw < 2 or self.bx < 2:
            raise ConfigError("bw and bx must be >= 2 (sign + magnitude)")


def vmac_lsb(enob: float, nmult: int) -> float:
    """ADC LSB in product units: ``2^(1 + log2(Nmult) - ENOB)``."""
    return nmult * 2.0 ** (-(enob - 1.0))


def vmac_error_std(enob: float, nmult: int) -> float:
    """Std of the per-VMAC error E_VMAC (Eq. 1): ``LSB / sqrt(12)``."""
    return vmac_lsb(enob, nmult) / math.sqrt(12.0)


def total_error_std(enob: float, nmult: int, ntot: int) -> float:
    """Std of the accumulated error E_tot at a conv output (Eq. 2).

    Parameters
    ----------
    enob, nmult:
        VMAC parameters.
    ntot:
        Total multiplications per output activation
        (``C_in * kh * kw`` for a convolution, ``in_features`` for a
        fully-connected layer).

    Notes
    -----
    ``Ntot / Nmult`` VMACs are required; if ``Ntot`` is not a multiple
    of ``Nmult`` the ratio is used as-is (fractional), which matches the
    paper's formula and is exact when the last VMAC is partially filled
    with zero products.
    """
    if ntot < 1:
        raise ConfigError(f"ntot must be >= 1, got {ntot}")
    return math.sqrt(ntot / nmult) * vmac_error_std(enob, nmult)


def equivalent_enob(enob: float, nmult: int, reference_nmult: int = 8) -> float:
    """Map (ENOB, Nmult) to the ENOB giving equal error at ``reference_nmult``.

    From Eq. 2, ``Var(E_tot) ∝ Nmult * 4^-ENOB`` for fixed ``Ntot``, so
    two configurations inject identical error iff

        ENOB_ref = ENOB + 0.5 * log2(reference_nmult / Nmult)

    The paper uses this to populate Fig. 8 from measurements taken at
    ``Nmult = 8`` ("Accuracy results for Nmult != 8 are obtained by
    mapping results from Nmult = 8 using the equation for AMS error
    magnitude presented in Section 2").
    """
    return enob + 0.5 * math.log2(reference_nmult / nmult)


@dataclass(frozen=True)
class PrecisionBreakdown:
    """The Fig. 2 bit bookkeeping for an ideal vs. AMS dot product.

    The ideal product of a BW-bit and a BX-bit signed (sign-magnitude)
    number has ``BW + BX - 2`` magnitude bits plus a sign; summing
    ``Nmult`` of them adds ``log2(Nmult)`` bits.  The ADC keeps the top
    ``ENOB_VMAC`` of these; the rest are lost.
    """

    ideal_magnitude_bits: int
    sum_extension_bits: float
    total_ideal_bits: float
    recovered_bits: float
    lost_bits: float

    @staticmethod
    def from_config(config: VMACConfig) -> "PrecisionBreakdown":
        ideal = config.bw + config.bx - 2
        extension = 1.0 + math.log2(config.nmult)
        total = ideal + extension
        recovered = min(config.enob, total)
        return PrecisionBreakdown(
            ideal_magnitude_bits=ideal,
            sum_extension_bits=extension,
            total_ideal_bits=total,
            recovered_bits=recovered,
            lost_bits=max(total - recovered, 0.0),
        )

    @property
    def is_lossless(self) -> bool:
        """True when the ADC resolution covers the full ideal precision."""
        return self.lost_bits == 0.0
