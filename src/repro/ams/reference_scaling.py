"""ADC reference-voltage scaling (paper Section 4, third hardware method).

"A third method of error reduction ... is to scale the ADC reference
voltage with respect to the multiplier supply in order to play with the
dynamic range-resolution tradeoff.  By making the ADC reference voltage
smaller than the multiplier supply ... at least one of the most
significant magnitude bits of the partial dot product is cut off (set to
0); the resolution of the ADC can then be increased."

With reference scale ``alpha <= 1`` the ADC full scale becomes
``alpha * Nmult``: values beyond it clip (distortion), but the LSB —
and hence quantization noise — shrinks by the same factor.  Because
partial dot products of real networks concentrate near zero, a
well-chosen ``alpha`` reduces total error.  The paper stresses the
effectiveness is "network- and data-dependent", so the sweep here
operates on *measured* partial-sum samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.ams.vmac import vmac_lsb
from repro.errors import ConfigError


def clipped_quantize(
    values: np.ndarray, enob: float, nmult: int, alpha: float = 1.0
) -> np.ndarray:
    """Quantize with full scale ``alpha * Nmult`` and matching LSB."""
    if not 0.0 < alpha <= 1.0:
        raise ConfigError(f"alpha must be in (0, 1], got {alpha}")
    full_scale = alpha * nmult
    lsb = alpha * vmac_lsb(enob, nmult)
    quantized = np.round(values / lsb) * lsb
    return np.clip(quantized, -full_scale, full_scale)


@dataclass(frozen=True)
class ReferenceScalingPoint:
    """One row of a reference-scaling sweep."""

    alpha: float
    rms_error: float
    clip_fraction: float


def reference_scaling_sweep(
    samples: np.ndarray,
    enob: float,
    nmult: int,
    alphas: Sequence[float] = (1.0, 0.5, 0.25, 0.125, 0.0625),
) -> List[ReferenceScalingPoint]:
    """Measure conversion error vs reference scale on real partial sums.

    Parameters
    ----------
    samples:
        Observed analog partial-sum values (any shape); gather these
        from a network forward pass for the data-dependence the paper
        calls for.
    enob, nmult:
        ADC parameters (resolution is held fixed; alpha trades range
        for effective precision).

    Returns
    -------
    One :class:`ReferenceScalingPoint` per alpha, with the RMS
    conversion error and the fraction of samples that clipped.
    """
    flat = np.asarray(samples, dtype=np.float64).reshape(-1)
    points = []
    for alpha in alphas:
        converted = clipped_quantize(flat, enob, nmult, alpha)
        rms = float(np.sqrt(np.mean((converted - flat) ** 2)))
        clip_frac = float(np.mean(np.abs(flat) > alpha * nmult))
        points.append(
            ReferenceScalingPoint(
                alpha=float(alpha), rms_error=rms, clip_fraction=clip_frac
            )
        )
    return points


def best_alpha(points: Sequence[ReferenceScalingPoint]) -> ReferenceScalingPoint:
    """The sweep point with the smallest RMS conversion error."""
    if not points:
        raise ConfigError("empty sweep")
    return min(points, key=lambda p: p.rms_error)
