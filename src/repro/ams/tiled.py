"""Per-VMAC tiled error modeling (paper Section 4, "improve our error
models").

The lumped injector assumes the per-VMAC errors are i.i.d. and sums them
analytically.  The paper proposes a refinement "closer to a hardware
implementation": split the convolution into VMAC-sized units and apply
the conversion to each partial sum separately.  Here each VMAC output is
actually *quantized* (uniform mid-tread quantizer with the ENOB-derived
LSB, clipped at the ADC full scale), so the modeled error is
data-dependent and exactly reproduces the deterministic quantization
behaviour instead of assuming uncorrelated Gaussian noise.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ams.vmac import VMACConfig, vmac_lsb
from repro.nn.module import Module
from repro.quant.qmodules import QuantConv2d
from repro.tensor.im2col import conv_output_size, im2col
from repro.tensor.functional import add_forward_noise
from repro.tensor.tensor import Tensor
from repro.utils.rng import entropy_rng, new_rng, seed_sequence


def quantize_to_adc(
    values: np.ndarray,
    enob: float,
    nmult: int,
    thermal_fraction: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Convert analog partial sums through the modeled ADC.

    Mid-tread uniform quantization with ``LSB = 2 * Nmult / 2^ENOB``,
    clipped at the full scale ``[-Nmult, Nmult]``.  Optionally a fraction
    of the total error budget is spent as pre-quantization thermal noise
    (``thermal_fraction`` of the error variance), which models
    thermal-noise-limited converters.
    """
    lsb = vmac_lsb(enob, nmult)
    x = values
    if thermal_fraction > 0.0:
        if rng is None:
            rng = entropy_rng()
        thermal_std = np.sqrt(thermal_fraction) * lsb / np.sqrt(12.0)
        x = x + rng.normal(0.0, thermal_std, size=x.shape)
    quantized = np.round(x / lsb) * lsb
    return np.clip(quantized, -nmult, nmult).astype(values.dtype)


def tiled_vmac_dot(
    cols: np.ndarray,
    w_mat: np.ndarray,
    config: VMACConfig,
    thermal_fraction: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    recycle: bool = False,
    recycle_final_extra_bits: float = 2.0,
) -> np.ndarray:
    """Dot products computed VMAC-by-VMAC with per-VMAC conversion.

    Parameters
    ----------
    cols:
        Unfolded activations, shape ``(M, Ntot)`` (rows are receptive
        fields in [0, 1] after DoReFa).
    w_mat:
        Weight matrix, shape ``(out, Ntot)``, values in [-1, 1].
    config:
        VMAC parameters; ``config.nmult`` elements are summed in the
        analog domain per conversion.
    recycle:
        Apply first-order delta-sigma error feedback across the
        successive conversions of each output (paper Section 4's
        "error recycling"; requires the output stationarity this
        chunk-sequential loop provides).  The final conversion runs at
        ``config.enob + recycle_final_extra_bits``.

    Returns
    -------
    ``(M, out)`` array: the digital sum of converted partial sums.
    """
    m, ntot = cols.shape
    out = w_mat.shape[0]
    nmult = config.nmult
    total = np.zeros((m, out), dtype=cols.dtype)
    feedback = np.zeros((m, out), dtype=np.float64) if recycle else None
    starts = list(range(0, ntot, nmult))
    for index, start in enumerate(starts):
        stop = min(start + nmult, ntot)
        partial = cols[:, start:stop] @ w_mat[:, start:stop].T
        enob = config.enob
        if recycle:
            partial = partial + feedback
            if index == len(starts) - 1:
                enob = config.enob + recycle_final_extra_bits
        converted = quantize_to_adc(
            partial, enob, nmult, thermal_fraction, rng
        )
        if recycle:
            feedback = partial - converted
        total += converted.astype(total.dtype, copy=False)
    return total


class TiledVMACConv2d(Module):
    """Convolution evaluated through per-VMAC conversions.

    Wraps a :class:`~repro.quant.qmodules.QuantConv2d`: the forward value
    is the tiled AMS computation; the backward pass is that of the ideal
    quantized convolution (a layer-level straight-through estimator), so
    the module can be dropped into either evaluation or retraining.
    """

    def __init__(
        self,
        conv: QuantConv2d,
        config: VMACConfig,
        thermal_fraction: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        recycle: bool = False,
    ):
        super().__init__()
        self.conv = conv
        self.config = config
        self.thermal_fraction = thermal_fraction
        self.rng = rng or entropy_rng()
        self.recycle = recycle

    def forward(self, x: Tensor) -> Tensor:
        ideal = self.conv(x)
        # Recompute the forward value with per-VMAC conversions.
        kh, kw = self.conv.kernel_size
        stride = self.conv.stride
        padding = self.conv.padding
        stride_pair = (stride, stride) if isinstance(stride, int) else stride
        pad_pair = (padding, padding) if isinstance(padding, int) else padding
        cols = im2col(x.data, (kh, kw), stride_pair, pad_pair)
        w_mat = self.conv.quantized_weight().data.reshape(
            self.conv.out_channels, -1
        )
        tiled = tiled_vmac_dot(
            cols,
            w_mat,
            self.config,
            self.thermal_fraction,
            self.rng,
            recycle=self.recycle,
        )
        n = x.shape[0]
        out_h = conv_output_size(x.shape[2], kh, stride_pair[0], pad_pair[0])
        out_w = conv_output_size(x.shape[3], kw, stride_pair[1], pad_pair[1])
        tiled_nchw = tiled.reshape(n, out_h, out_w, -1).transpose(0, 3, 1, 2)
        if self.conv.bias is not None:
            tiled_nchw = tiled_nchw + self.conv.bias.data.reshape(1, -1, 1, 1)
        # Forward value = tiled computation; backward = ideal conv grads.
        return add_forward_noise(ideal, tiled_nchw - ideal.data)

    def __repr__(self) -> str:
        return (
            f"TiledVMACConv2d(enob={self.config.enob}, "
            f"nmult={self.config.nmult}, conv={self.conv!r})"
        )


def tile_quantized_convs(
    model: Module,
    config: VMACConfig,
    thermal_fraction: float = 0.0,
    seed: int = 0,
    recycle: bool = False,
) -> int:
    """Replace every :class:`QuantConv2d` in ``model`` with a tiled wrapper.

    Walks the module tree and swaps each quantized convolution for a
    :class:`TiledVMACConv2d` in place (the wrapped conv keeps its
    weights).  Returns the number of convolutions tiled.  Apply to a
    trained DoReFa model to evaluate it under the per-VMAC error model.
    """
    seq = seed_sequence(seed)
    tiled = 0
    for module in list(model.modules()):
        for name, child in list(module._modules.items()):
            if isinstance(child, QuantConv2d):
                rng = new_rng(seq.spawn(1)[0])
                setattr(
                    module,
                    name,
                    TiledVMACConv2d(
                        child, config, thermal_fraction, rng, recycle=recycle
                    ),
                )
                tiled += 1
    return tiled
