"""Fault tolerance: atomic checkpoints, resume, and graceful drain.

The paper's expensive step is error-in-the-loop retraining (Section 4)
fanned out over ``(ENOB, Nmult)`` grids; this subpackage makes that
work survive being killed:

- :mod:`~repro.ckpt.checkpoint` — versioned, schema-checked, atomically
  written training checkpoints capturing model weights, optimizer
  slots, the best-epoch snapshot, early-stop counters, epoch history,
  and every RNG stream the remaining epochs depend on.  A
  ``Trainer.fit`` killed at any epoch boundary and resumed produces
  bit-identical final weights and history.
- :mod:`~repro.ckpt.resume` — sweep-level resume: replay a run journal,
  reuse completed grid points, re-run only failed/missing ones
  (``python -m repro.experiments run <exp> --resume <run_id>``).
- :mod:`~repro.ckpt.signals` — SIGINT/SIGTERM graceful drain: finish
  the current epoch/point, write a final checkpoint, journal
  ``run.interrupted``, exit 130.

See ``docs/fault_tolerance.md`` for the checkpoint format and the
resume semantics.
"""

from repro.ckpt.checkpoint import (
    CKPT_SCHEMA_VERSION,
    TrainCheckpoint,
    capture_rng_states,
    checkpoint_path,
    load_checkpoint,
    restore_rng_states,
    save_checkpoint,
)
from repro.ckpt.resume import (
    load_sweep_results,
    store_sweep_result,
    sweep_point_path,
)
from repro.ckpt.signals import (
    clear_interrupt,
    graceful_shutdown,
    install_handlers,
    interrupt_requested,
    uninstall_handlers,
)

__all__ = [
    "CKPT_SCHEMA_VERSION",
    "TrainCheckpoint",
    "capture_rng_states",
    "checkpoint_path",
    "clear_interrupt",
    "graceful_shutdown",
    "install_handlers",
    "interrupt_requested",
    "load_checkpoint",
    "load_sweep_results",
    "restore_rng_states",
    "save_checkpoint",
    "store_sweep_result",
    "sweep_point_path",
    "uninstall_handlers",
]
