"""Graceful SIGINT/SIGTERM drain for long training and sweep runs.

The handler never interrupts work mid-flight: it records which signal
arrived, and the instrumented loops (``Trainer.fit`` epochs, serial
sweep points) poll :func:`interrupt_requested` at their next safe
boundary, write a final checkpoint, journal a ``run.interrupted``
event, and raise :class:`~repro.errors.RunInterrupted` — which the CLI
turns into exit code 130.  A second signal while draining falls back
to the ordinary abrupt ``KeyboardInterrupt``, so an impatient operator
is never locked out.

Handlers can only be installed from the main thread (a Python
constraint); :func:`graceful_shutdown` silently degrades to a no-op
context elsewhere, e.g. inside pool workers, where the parent owns
signal policy anyway.
"""

from __future__ import annotations

import contextlib
import signal
import threading
from typing import Iterator, Optional

_LOCK = threading.Lock()
_REQUESTED: Optional[str] = None
_PREVIOUS: dict = {}

#: Signals a graceful drain listens for.
DRAIN_SIGNALS = (signal.SIGINT, signal.SIGTERM)


def _handler(signum, frame) -> None:
    global _REQUESTED
    if _REQUESTED is not None:
        # Second request: the operator wants out *now*.
        raise KeyboardInterrupt
    _REQUESTED = signal.Signals(signum).name


def interrupt_requested() -> Optional[str]:
    """Name of the pending drain signal (``"SIGTERM"``/...), or None."""
    return _REQUESTED


def clear_interrupt() -> None:
    """Forget a pending drain request (tests; between CLI commands)."""
    global _REQUESTED
    _REQUESTED = None


def install_handlers() -> bool:
    """Install the drain handlers; returns False off the main thread."""
    if threading.current_thread() is not threading.main_thread():
        return False
    with _LOCK:
        if _PREVIOUS:
            return True  # already installed
        for sig in DRAIN_SIGNALS:
            _PREVIOUS[sig] = signal.signal(sig, _handler)
    return True


def uninstall_handlers() -> None:
    """Restore the handlers that were active before :func:`install_handlers`."""
    with _LOCK:
        for sig, previous in _PREVIOUS.items():
            signal.signal(sig, previous)
        _PREVIOUS.clear()


@contextlib.contextmanager
def graceful_shutdown() -> Iterator[None]:
    """Context that arms the drain handlers and always restores them.

    Any interrupt flag left by the body is cleared on exit, so one
    drained command never poisons the next.
    """
    installed = install_handlers()
    try:
        yield
    finally:
        if installed:
            uninstall_handlers()
        clear_interrupt()
