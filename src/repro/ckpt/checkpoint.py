"""Versioned, schema-checked, atomically-written training checkpoints.

One checkpoint is one ``.npz`` archive — a single file, so the
:func:`~repro.utils.serialization.atomic_write` rename makes the whole
capture atomic — holding the complete state of a
:meth:`repro.train.Trainer.fit` run at an epoch boundary:

- ``model.<name>``: the live model ``state_dict`` arrays,
- ``optim.<name>``: optimizer slot state (SGD velocity / Adam moments
  and step count),
- ``best.<name>``: the best-validation-epoch weight snapshot,
- a JSON metadata block (stored as a uint8 array so everything rides
  in one archive): schema version, epoch index, early-stop counters,
  the full epoch history, the training-config fingerprint, and every
  RNG state the remaining epochs depend on — the dataloader shuffle
  generator plus any stateful per-module noise generator (AMS error
  injectors advance their generator every forward pass).

Floats in the metadata round-trip bit-exactly (``json`` serializes
with ``repr`` precision), and arrays round-trip exactly by
construction, which is what makes kill-at-epoch-k + resume produce
final weights and history bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import CheckpointError
from repro.utils.serialization import load_state, normalize_npz_path, save_state

#: Checkpoint format version; bump on any incompatible layout change.
CKPT_SCHEMA_VERSION = 1

#: Archive key of the JSON metadata block.
_META_KEY = "__checkpoint_meta__"

#: Array-key prefixes for the three state-dict sections.
_SECTIONS = ("model", "optim", "best")

#: Metadata fields every checkpoint must carry.
_REQUIRED_META = (
    "schema_version",
    "epoch",
    "best_accuracy",
    "best_epoch",
    "epochs_since_best",
    "stopped_early",
    "history",
    "rng_states",
    "train_config",
)


@dataclass
class TrainCheckpoint:
    """Full training state at the end of epoch ``epoch``.

    ``rng_states`` maps stream names (``"loader"`` for the shuffle
    generator, ``"module:<qualname>"`` for per-module generators) to
    ``numpy`` bit-generator state dicts.  ``train_config`` is the
    fingerprint dict checked on resume — resuming under different
    hyperparameters would not reproduce the uninterrupted run, so it
    is an error rather than a silent divergence.
    """

    epoch: int
    model_state: Dict[str, np.ndarray]
    optimizer_state: Dict[str, np.ndarray]
    best_state: Optional[Dict[str, np.ndarray]]
    best_accuracy: float
    best_epoch: int
    epochs_since_best: int
    history: List[dict]
    rng_states: Dict[str, dict]
    train_config: Dict[str, object] = field(default_factory=dict)
    stopped_early: bool = False
    schema_version: int = CKPT_SCHEMA_VERSION


def checkpoint_path(base: str) -> str:
    """The conventional checkpoint path beside an artifact ``base``."""
    return normalize_npz_path(f"{base}.ckpt", caller="checkpoint_path")


def save_checkpoint(path: str, ckpt: TrainCheckpoint) -> str:
    """Atomically write ``ckpt`` to ``path``; returns the final path."""
    path = normalize_npz_path(path, caller="save_checkpoint")
    arrays: Dict[str, np.ndarray] = {}
    sections = {
        "model": ckpt.model_state,
        "optim": ckpt.optimizer_state,
        "best": ckpt.best_state or {},
    }
    for section, state in sections.items():
        for name, value in state.items():
            arrays[f"{section}.{name}"] = value
    meta = {
        "schema_version": ckpt.schema_version,
        "epoch": ckpt.epoch,
        "best_accuracy": float(ckpt.best_accuracy),
        "best_epoch": ckpt.best_epoch,
        "epochs_since_best": ckpt.epochs_since_best,
        "stopped_early": ckpt.stopped_early,
        "history": ckpt.history,
        "rng_states": ckpt.rng_states,
        "train_config": ckpt.train_config,
        "has_best": ckpt.best_state is not None,
    }
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    save_state(path, arrays)
    return path


def load_checkpoint(path: str) -> TrainCheckpoint:
    """Read and validate a checkpoint written by :func:`save_checkpoint`.

    Raises :class:`~repro.errors.CheckpointError` when the archive is
    missing, lacks the metadata block, carries an unsupported schema
    version, or is missing required fields.
    """
    path = normalize_npz_path(path, caller="load_checkpoint")
    if not os.path.exists(path):
        raise CheckpointError(f"no checkpoint at {path}")
    arrays = load_state(path)
    if _META_KEY not in arrays:
        raise CheckpointError(
            f"{path} is not a training checkpoint (no {_META_KEY} block); "
            "was it written by save_state instead of save_checkpoint?"
        )
    try:
        meta = json.loads(bytes(arrays.pop(_META_KEY)).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"corrupt checkpoint metadata in {path}: {exc}")
    missing = [name for name in _REQUIRED_META if name not in meta]
    if missing:
        raise CheckpointError(
            f"checkpoint {path} is missing metadata fields {missing}"
        )
    version = meta["schema_version"]
    if version != CKPT_SCHEMA_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has schema version {version}; this build "
            f"reads version {CKPT_SCHEMA_VERSION}"
        )
    sections: Dict[str, Dict[str, np.ndarray]] = {s: {} for s in _SECTIONS}
    for key, value in arrays.items():
        section, _, name = key.partition(".")
        if section not in sections or not name:
            raise CheckpointError(
                f"checkpoint {path} has unrecognized array key {key!r}"
            )
        sections[section][name] = value
    return TrainCheckpoint(
        epoch=meta["epoch"],
        model_state=sections["model"],
        optimizer_state=sections["optim"],
        best_state=sections["best"] if meta.get("has_best") else None,
        best_accuracy=meta["best_accuracy"],
        best_epoch=meta["best_epoch"],
        epochs_since_best=meta["epochs_since_best"],
        history=meta["history"],
        rng_states=meta["rng_states"],
        train_config=meta["train_config"],
        stopped_early=meta["stopped_early"],
        schema_version=version,
    )


# ----------------------------------------------------------------------
# RNG capture: everything stochastic the remaining epochs depend on
# ----------------------------------------------------------------------
def capture_rng_states(model, loader=None) -> Dict[str, dict]:
    """Snapshot every generator the rest of training will draw from.

    Walks ``model.named_modules()`` for generator state: modules
    exposing ``rng_streams()`` (the AMS error injectors, which may own
    extra per-model streams on top of their main one) contribute every
    stream — the main one under the legacy ``module:<name>`` key so old
    checkpoints stay loadable, extras under ``module:<name>:<stream>``
    — and plain ``rng`` attributes that are ``numpy`` generators
    contribute one state each.  The dataloader's shuffle generator is
    included under ``"loader"``.  The states are plain dicts of ints
    and strings, JSON-serializable bit-exactly.
    """
    states: Dict[str, dict] = {}
    if loader is not None:
        states["loader"] = loader.rng_state()
    for name, gen in _model_streams(model).items():
        states[name] = gen.bit_generator.state
    return states


def _model_streams(model) -> Dict[str, "np.random.Generator"]:
    """Every checkpointable generator in ``model``, by checkpoint key."""
    streams: Dict[str, np.random.Generator] = {}
    for name, module in model.named_modules():
        collect = getattr(module, "rng_streams", None)
        if callable(collect):
            for stream, gen in collect().items():
                key = (
                    f"module:{name}" if stream == ""
                    else f"module:{name}:{stream}"
                )
                streams[key] = gen
            continue
        gen = getattr(module, "rng", None)
        if isinstance(gen, np.random.Generator):
            streams[f"module:{name}"] = gen
    return streams


def restore_rng_states(states: Dict[str, dict], model, loader=None) -> None:
    """Restore a :func:`capture_rng_states` snapshot onto live objects.

    Raises :class:`~repro.errors.CheckpointError` when the checkpoint
    names a generator the rebuilt model does not have — resuming a
    different architecture cannot be bit-identical.
    """
    streams = _model_streams(model)
    for name, state in states.items():
        if name == "loader":
            if loader is not None:
                loader.set_rng_state(state)
            continue
        if name not in streams:
            raise CheckpointError(
                f"checkpoint records RNG state for {name!r} but the "
                "rebuilt model has no such generator; the architecture "
                "does not match the checkpoint"
            )
        streams[name].bit_generator.state = state
