"""Sweep-level resume: replay a run's journal, reuse completed points.

A sweep that dies at point 47/48 — worker crash, OOM kill, preemption —
already journaled every completed point as ``sweep.point_done``.  This
module adds the missing half: the point *values* are persisted beside
the journal (``<run_dir>/sweep/<ordinal>/<index>.pkl``, written
atomically), and ``run --resume <run_id>`` replays the journal to learn
which points finished, loads their stored values, and hands
:func:`repro.parallel.sweep_map` a skip set so only failed or missing
points re-execute.

A run can contain several ``sweep_map`` calls (and ``all`` runs several
experiments); sweeps are matched positionally by *ordinal* — the n-th
``sweep.start`` of the old run pairs with the n-th ``sweep_map`` call
of the new one, which is deterministic because experiment code is.
Reused points are re-verified by key: if the grid changed between runs,
a stored point whose key no longer matches simply re-runs.
"""

from __future__ import annotations

import os
import pickle
from typing import Dict, List, Tuple

from repro.obs.journal import read_events, resolve_run_dir
from repro.utils.serialization import atomic_write

#: Events that mark a point as not needing re-execution.  A resumed run
#: journals reused points as ``sweep.point_skipped``, so resuming from
#: an already-resumed run chains correctly.
_DONE_EVENTS = ("sweep.point_done", "sweep.point_skipped")


def sweep_point_path(run_dir: str, ordinal: int, index: int) -> str:
    """Where sweep ``ordinal``'s point ``index`` result is persisted."""
    return os.path.join(run_dir, "sweep", str(ordinal), f"{index:05d}.pkl")


def store_sweep_result(
    run_dir: str, ordinal: int, index: int, key, value
) -> str:
    """Atomically persist one completed point's ``(key, value)``."""
    path = sweep_point_path(run_dir, ordinal, index)
    with atomic_write(path, "wb") as fh:
        pickle.dump({"key": key, "value": value}, fh)
    return path


def _sweep_blocks(events: List[dict]) -> List[List[dict]]:
    """Split a journal's events into per-``sweep.start`` blocks."""
    blocks: List[List[dict]] = []
    current: List[dict] = None  # type: ignore[assignment]
    for event in events:
        name = event.get("event", "")
        if name == "sweep.start":
            current = []
            blocks.append(current)
        elif name.startswith("sweep.") and current is not None:
            current.append(event)
    return blocks


def load_sweep_results(
    run: str, results_dir: str, ordinal: int
) -> Dict[int, Tuple[object, object]]:
    """Completed points of sweep ``ordinal`` in a previous run.

    Returns ``{index: (key_jsonable, value)}`` for every point the old
    run's journal records as done *and* whose persisted value loads.  A
    journaled point without a readable value file is treated as missing
    (it re-runs) rather than an error — the value write and the journal
    append cannot be made mutually atomic, and re-running is always
    safe.  An ``ordinal`` beyond what the old run journaled is likewise
    empty, not an error: a run drained during training (or during an
    earlier experiment of ``all``) never reached that sweep, so there is
    simply nothing to reuse.  A genuinely mismatched command is caught
    per point by the key check below.
    """
    run_dir = resolve_run_dir(run, results_dir)
    blocks = _sweep_blocks(read_events(run_dir, results_dir))
    if ordinal >= len(blocks):
        return {}
    completed: Dict[int, Tuple[object, object]] = {}
    for event in blocks[ordinal]:
        if event["event"] not in _DONE_EVENTS:
            continue
        index = event["index"]
        path = sweep_point_path(run_dir, ordinal, index)
        try:
            with open(path, "rb") as fh:
                stored = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError):
            continue  # value lost with the crash: just re-run the point
        if stored.get("key") != event.get("key"):
            continue  # journal/value mismatch: distrust, re-run
        completed[index] = (stored["key"], stored["value"])
    return completed
