"""Batch-level image transforms (training augmentation).

The paper's recipe keeps Distiller's default ImageNet augmentation
(random crop + horizontal flip).  These are the equivalents for the
synthetic dataset, operating on whole NCHW batches so the numpy
training loop stays vectorized.  All transforms take an explicit
generator for reproducibility and compose with :class:`Compose`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.data.dataloader import DataLoader
from repro.data.dataset import ArrayDataset
from repro.errors import ConfigError

BatchTransform = Callable[[np.ndarray, np.random.Generator], np.ndarray]


class Compose:
    """Apply transforms in order."""

    def __init__(self, transforms: Sequence[BatchTransform]):
        self.transforms = list(transforms)

    def __call__(
        self, images: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        for transform in self.transforms:
            images = transform(images, rng)
        return images


class RandomHorizontalFlip:
    """Flip each image left-right with probability ``p``."""

    def __init__(self, p: float = 0.5):
        if not 0.0 <= p <= 1.0:
            raise ConfigError(f"p must be in [0, 1], got {p}")
        self.p = p

    def __call__(
        self, images: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        flip = rng.random(len(images)) < self.p
        out = images.copy()
        out[flip] = out[flip, :, :, ::-1]
        return out


class RandomShift:
    """Translate each image by up to ``max_shift`` pixels (torus roll).

    Matches the framing jitter the synthetic generator uses, so the
    augmentation stays on the data manifold.
    """

    def __init__(self, max_shift: int = 2):
        if max_shift < 0:
            raise ConfigError("max_shift cannot be negative")
        self.max_shift = max_shift

    def __call__(
        self, images: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        if self.max_shift == 0:
            return images
        out = np.empty_like(images)
        shifts = rng.integers(
            -self.max_shift, self.max_shift + 1, size=(len(images), 2)
        )
        for i, (dy, dx) in enumerate(shifts):
            out[i] = np.roll(images[i], (int(dy), int(dx)), axis=(1, 2))
        return out


class GaussianNoise:
    """Additive pixel noise (a software-level robustness aug)."""

    def __init__(self, std: float = 0.05):
        if std < 0:
            raise ConfigError("std cannot be negative")
        self.std = std

    def __call__(
        self, images: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        if self.std == 0.0:
            return images
        noise = rng.normal(0.0, self.std, size=images.shape)
        return (images + noise).astype(images.dtype)


class AugmentingDataLoader(DataLoader):
    """DataLoader that applies a batch transform to training images."""

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int,
        transform: BatchTransform,
        shuffle: bool = True,
        drop_last: bool = True,
        rng=None,
    ):
        super().__init__(dataset, batch_size, shuffle, drop_last, rng)
        self.transform = transform

    def __iter__(self):
        for images, labels in super().__iter__():
            yield self.transform(images, self.rng), labels
