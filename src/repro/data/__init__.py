"""Datasets and loading.

:class:`~repro.data.synthetic.SynthImageNet` is the stand-in for
ImageNet: a procedurally generated, class-structured RGB image dataset
(see DESIGN.md for the substitution rationale).
"""

from repro.data.dataset import Dataset, ArrayDataset
from repro.data.dataloader import DataLoader
from repro.data.synthetic import SynthImageNet, SynthImageNetConfig
from repro.data.transforms import (
    Compose,
    RandomHorizontalFlip,
    RandomShift,
    GaussianNoise,
    AugmentingDataLoader,
)

__all__ = [
    "Dataset",
    "ArrayDataset",
    "DataLoader",
    "SynthImageNet",
    "SynthImageNetConfig",
    "Compose",
    "RandomHorizontalFlip",
    "RandomShift",
    "GaussianNoise",
    "AugmentingDataLoader",
]
