"""Dataset abstractions."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ShapeError


class Dataset:
    """Minimal dataset protocol: ``len`` and integer indexing."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        raise NotImplementedError


class ArrayDataset(Dataset):
    """Dataset backed by in-memory arrays ``(images, labels)``.

    Images are NCHW float32; labels are 1-D integers.
    """

    def __init__(self, images: np.ndarray, labels: np.ndarray):
        if len(images) != len(labels):
            raise ShapeError(
                f"images ({len(images)}) and labels ({len(labels)}) disagree"
            )
        self.images = np.ascontiguousarray(images, dtype=np.float32)
        self.labels = np.ascontiguousarray(labels, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the full (images, labels) pair without copying."""
        return self.images, self.labels
