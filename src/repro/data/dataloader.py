"""Batched iteration over array datasets."""

from __future__ import annotations

import warnings
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.errors import ConfigError

#: Seed of the generator used when a shuffling loader is built without
#: an explicit ``rng``.  A *fixed* default keeps such epochs
#: reproducible and resumable (an unseeded generator would make them
#: silently irreproducible); the one-time warning below names the call
#: site that should be passing a generator.
DEFAULT_SHUFFLE_SEED = 0

#: Call sites already warned about relying on the default shuffle seed.
_WARNED_SITES: set = set()


def _warn_unseeded_shuffle() -> None:
    """Warn once per call site about an implicit shuffle generator."""
    import sys

    frame = sys._getframe(2)  # caller of DataLoader.__init__
    site = f"{frame.f_code.co_filename}:{frame.f_lineno}"
    if site in _WARNED_SITES:
        return
    _WARNED_SITES.add(site)
    warnings.warn(
        f"DataLoader(shuffle=True) without rng at {site}: using a fixed "
        f"default seed ({DEFAULT_SHUFFLE_SEED}) so the epoch stream stays "
        "reproducible and resumable; pass rng=new_rng(seed) to choose the "
        "stream explicitly",
        UserWarning,
        stacklevel=3,
    )


class DataLoader:
    """Yield ``(images, labels)`` minibatches from an :class:`ArrayDataset`.

    Shuffling uses the provided generator, so epochs are reproducible;
    pass ``drop_last=True`` during training to keep batch statistics
    stable for batch norm.  Omitting ``rng`` with ``shuffle=True`` falls
    back to a fixed-seed generator (see :data:`DEFAULT_SHUFFLE_SEED`)
    and warns once per call site — an unseeded generator would make the
    epoch stream impossible to reproduce or resume.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int,
        shuffle: bool = False,
        drop_last: bool = False,
        rng: Optional[np.random.Generator] = None,
    ):
        if batch_size <= 0:
            raise ConfigError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        if rng is None:
            if shuffle:
                _warn_unseeded_shuffle()
            rng = np.random.default_rng(DEFAULT_SHUFFLE_SEED)
        self.rng = rng

    # ------------------------------------------------------------------
    # checkpointing (see repro.ckpt): the generator is the loader's only
    # mutable state, so capturing it at an epoch boundary makes the
    # remaining epochs' shuffle orders bit-identical after a resume.
    # ------------------------------------------------------------------
    def rng_state(self) -> dict:
        """JSON-serializable snapshot of the shuffle generator."""
        return self.rng.bit_generator.state

    def set_rng_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`rng_state`."""
        self.rng.bit_generator.state = state

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        images, labels = self.dataset.arrays()
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            self.rng.shuffle(order)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start : start + self.batch_size]
            yield images[idx], labels[idx]
