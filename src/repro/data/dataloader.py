"""Batched iteration over array datasets."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.errors import ConfigError


class DataLoader:
    """Yield ``(images, labels)`` minibatches from an :class:`ArrayDataset`.

    Shuffling uses the provided generator, so epochs are reproducible;
    pass ``drop_last=True`` during training to keep batch statistics
    stable for batch norm.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int,
        shuffle: bool = False,
        drop_last: bool = False,
        rng: Optional[np.random.Generator] = None,
    ):
        if batch_size <= 0:
            raise ConfigError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = rng or np.random.default_rng()

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        images, labels = self.dataset.arrays()
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            self.rng.shuffle(order)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start : start + self.batch_size]
            yield images[idx], labels[idx]
