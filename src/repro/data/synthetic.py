"""SynthImageNet: a procedurally generated stand-in for ImageNet.

The paper measures *relative* top-1 accuracy of ResNet-50 on ImageNet
under quantization and AMS error injection.  ImageNet itself is not
available offline, so this module generates a class-structured RGB image
dataset that exercises the same code path:

- each class has a smooth low-frequency *prototype* (what "object
  identity" looks like after downsampling) and a class-specific oriented
  *grating* (texture);
- each instance applies a random spatial shift, random grating phase,
  per-instance amplitude jitter, a *distractor* blend from another
  class's prototype (inter-class confusability), and additive Gaussian
  pixel noise (intra-class variance).

The resulting task is learnable but not saturated: a small ResNet
reaches ImageNet-like top-1 (~0.7-0.9), leaving headroom for
quantization/AMS error to hurt and for retraining to recover — the
quantities the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import ndimage

from repro.data.dataset import ArrayDataset
from repro.errors import ConfigError


@dataclass(frozen=True)
class SynthImageNetConfig:
    """Generation parameters for :class:`SynthImageNet`.

    Attributes
    ----------
    num_classes:
        Number of categories (ImageNet has 1000; the default keeps numpy
        training tractable while preserving a multi-way task).
    image_size:
        Spatial resolution (square).
    channels:
        Color channels.
    train_per_class, val_per_class:
        Instances generated per class per split.
    prototype_cells:
        Coarse-grid resolution of the low-frequency class prototype.
    noise_std:
        Per-pixel Gaussian noise (intra-class variance).
    shift_frac:
        Max random translation as a fraction of image size.
    distractor_mix:
        Blend weight of a wrong-class prototype (confusability).
    grating_weight:
        Amplitude of the class texture grating.
    seed:
        Generation seed; the dataset is a pure function of the config.
    """

    num_classes: int = 10
    image_size: int = 16
    channels: int = 3
    train_per_class: int = 200
    val_per_class: int = 50
    prototype_cells: int = 4
    noise_std: float = 0.55
    shift_frac: float = 0.25
    distractor_mix: float = 0.35
    grating_weight: float = 0.6
    seed: int = 1234

    def __post_init__(self):
        if self.num_classes < 2:
            raise ConfigError("need at least 2 classes")
        if self.image_size < self.prototype_cells:
            raise ConfigError("image_size must be >= prototype_cells")
        if not 0.0 <= self.distractor_mix < 1.0:
            raise ConfigError("distractor_mix must be in [0, 1)")


class SynthImageNet:
    """Deterministic synthetic classification dataset.

    Usage::

        data = SynthImageNet(SynthImageNetConfig(seed=0))
        train, val = data.train, data.val

    Both splits are :class:`~repro.data.dataset.ArrayDataset` with NCHW
    float32 images standardized to zero mean / unit variance using
    *train-split* statistics (as one would with real ImageNet).
    """

    def __init__(self, config: SynthImageNetConfig = SynthImageNetConfig()):
        self.config = config
        rng = np.random.default_rng(config.seed)
        self._prototypes = self._make_prototypes(rng)
        self._gratings = self._make_gratings(rng)
        train_x, train_y = self._make_split(rng, config.train_per_class)
        val_x, val_y = self._make_split(rng, config.val_per_class)
        # Standardize with train statistics.
        self.mean = float(train_x.mean())
        self.std = float(train_x.std() + 1e-8)
        train_x = (train_x - self.mean) / self.std
        val_x = (val_x - self.mean) / self.std
        self.train = ArrayDataset(train_x, train_y)
        self.val = ArrayDataset(val_x, val_y)

    # ------------------------------------------------------------------
    def _make_prototypes(self, rng: np.random.Generator) -> np.ndarray:
        """Low-frequency class prototypes (K, C, S, S)."""
        cfg = self.config
        coarse = rng.standard_normal(
            (cfg.num_classes, cfg.channels, cfg.prototype_cells, cfg.prototype_cells)
        )
        zoom = cfg.image_size / cfg.prototype_cells
        smooth = ndimage.zoom(coarse, (1, 1, zoom, zoom), order=1)
        smooth = smooth[:, :, : cfg.image_size, : cfg.image_size]
        # Unit-normalize each prototype so classes are equally salient.
        norms = np.sqrt((smooth**2).mean(axis=(1, 2, 3), keepdims=True)) + 1e-8
        return (smooth / norms).astype(np.float32)

    def _make_gratings(self, rng: np.random.Generator) -> np.ndarray:
        """Class-specific oriented sinusoidal textures (K, S, S)."""
        cfg = self.config
        s = cfg.image_size
        yy, xx = np.meshgrid(np.arange(s), np.arange(s), indexing="ij")
        gratings = np.empty((cfg.num_classes, s, s), dtype=np.float32)
        for k in range(cfg.num_classes):
            theta = np.pi * k / cfg.num_classes + rng.uniform(0, 0.2)
            cycles = rng.uniform(1.5, 4.0)
            freq = 2 * np.pi * cycles / s
            phase_axis = xx * np.cos(theta) + yy * np.sin(theta)
            gratings[k] = np.sin(freq * phase_axis)
        return gratings

    def _make_split(
        self, rng: np.random.Generator, per_class: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        cfg = self.config
        n = cfg.num_classes * per_class
        images = np.empty(
            (n, cfg.channels, cfg.image_size, cfg.image_size), dtype=np.float32
        )
        labels = np.empty(n, dtype=np.int64)
        max_shift = max(int(cfg.image_size * cfg.shift_frac), 1)
        index = 0
        for k in range(cfg.num_classes):
            for _ in range(per_class):
                images[index] = self._make_instance(rng, k, max_shift)
                labels[index] = k
                index += 1
        return images, labels

    def _make_instance(
        self, rng: np.random.Generator, label: int, max_shift: int
    ) -> np.ndarray:
        cfg = self.config
        proto = self._prototypes[label]
        # Random translation (torus roll models photographic framing jitter).
        dy, dx = rng.integers(-max_shift, max_shift + 1, size=2)
        img = np.roll(proto, (int(dy), int(dx)), axis=(1, 2)).copy()
        # Distractor: blend in a wrong class to create confusability.
        if cfg.distractor_mix > 0:
            other = int(rng.integers(cfg.num_classes - 1))
            if other >= label:
                other += 1
            img *= 1.0 - cfg.distractor_mix
            img += cfg.distractor_mix * self._prototypes[other]
        # Class texture with random phase (same roll trick).
        gy, gx = rng.integers(0, cfg.image_size, size=2)
        grating = np.roll(self._gratings[label], (int(gy), int(gx)), axis=(0, 1))
        img += cfg.grating_weight * grating[None, :, :]
        # Amplitude jitter (illumination) and pixel noise.
        img *= rng.uniform(0.7, 1.3)
        img += rng.normal(0.0, cfg.noise_std, size=img.shape)
        return img.astype(np.float32)


def make_default_data(seed: int = 1234, **overrides) -> SynthImageNet:
    """Build the canonical experiment dataset with optional overrides."""
    base = SynthImageNetConfig(seed=seed)
    if overrides:
        from dataclasses import replace

        base = replace(base, **overrides)
    return SynthImageNet(base)
