"""Execute an exploration spec on a workbench's sweep engine.

:func:`run_explore` turns a validated :class:`~repro.explore.schema.
ExploreSpec` into at most two :func:`~repro.parallel.sweep_map` calls —
an optional cheap surrogate sweep over the analytically surviving
points, then the full-retrain sweep over what the surrogate left — and
journals the complete outcome as ``explore.*`` events.

Resume contract
---------------
Pruning decisions are **never** read back from a journal; planning,
canonicalization and both prune passes are recomputed in-process, and
they are pure deterministic functions of the spec (plus the surrogate
losses, which the sweep engine itself replays from the interrupted
run's persisted point values).  A ``--resume`` of a drained run with
the same spec therefore rebuilds the identical plan, reuses every
finished sweep point, and can never re-admit a pruned point.  The
``explore.point`` / ``explore.frontier`` events are journaled only
after all sweeps complete, in deterministic plan order with
repr-precision floats, so the rendered report of a resumed run is
byte-identical to what an uninterrupted run would have printed.

Sweep ordinals are positional (see :mod:`repro.ckpt.resume`): for
``cheap-first`` the surrogate sweep is ordinal 0 and the full sweep
ordinal 1; for ``exhaustive`` the full sweep is ordinal 0.  Resuming a
run under a different strategy (or spec) simply fails the per-point key
check and re-runs — never mixes values up.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace as dc_replace
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.explore.schema import ExploreSpec
from repro.explore.strategy import (
    FrontierCell,
    PointPlan,
    canonicalize,
    level_curves,
    pareto_frontier,
    plan_points,
    prune_analytic,
    prune_surrogate,
)
from repro.obs.journal import journal_event
from repro.parallel import Artifact, SweepPoint, sweep_map
from repro.serve.spec import ModelSpec

#: Reference Nmult for the Eq. 2 equivalence classes (the paper's
#: measurement width).  A constant shared by every run so that resumed
#: and fresh plans agree; the choice only shifts all eq-ENOBs by the
#: same offset and never changes any ordering.
REFERENCE_NMULT = 8

#: Shared trained baselines, built serially before any fan-out.
ARTIFACTS = {
    "fp32": Artifact(
        "fp32", lambda b: b.registry.get(ModelSpec("fp32"), fresh=True)
    ),
    "quant-8-8": Artifact(
        "quant-8-8",
        lambda b: b.registry.get(ModelSpec("quant", bw=8, bx=8), fresh=True),
        deps=("fp32",),
    ),
}


def _point_seed(base_seed: int, token: str) -> int:
    """A stable per-point evaluation seed.

    Derived from the config seed and the point token with crc32 (never
    Python's randomized ``hash``), so the same point evaluates with the
    same noise streams in any process, strategy, or resume attempt.
    """
    return (int(base_seed) * 2654435761 + zlib.crc32(token.encode())) % (
        2**31
    )


def _eval_stats(bench, model, token: str):
    """Order-independent accuracy statistics for one design point.

    ``bench.stats`` draws noise from whatever state each injector
    currently holds, which differs between a freshly *trained* model
    and one *loaded* from cache — so a second run over a warm cache
    would measure different losses.  Seeded per-pass streams make the
    statistic a pure function of (weights, point), which is what lets
    cheap-first and exhaustive runs of the same spec agree bit for bit
    on shared points.
    """
    from repro.train.evaluate import repeated_evaluate

    return repeated_evaluate(
        model,
        bench.data.val,
        passes=bench.config.eval_passes,
        batch_size=bench.config.batch_size,
        seed=_point_seed(bench.config.seed, token),
    )


def _surrogate_point(
    bench, enob, nmult, base_mean, error_model, error_model_params
):
    """Eval-only surrogate: injected noise on the quantized weights."""
    model, _ = bench.registry.get(
        ModelSpec(
            "ams_eval",
            enob=enob,
            nmult=nmult,
            error_model=error_model,
            error_model_params=error_model_params,
        ),
        fresh=True,
    )
    stats = _eval_stats(bench, model, f"e{enob:g}:n{nmult}")
    return base_mean - stats.mean


def _surrogate_train_point(
    bench, enob, nmult, base_mean, error_model, error_model_params
):
    """Short-train surrogate: a truncated retrain on a scratch cache."""
    model, _ = bench.registry.get(
        ModelSpec(
            "ams",
            enob=enob,
            nmult=nmult,
            error_model=error_model,
            error_model_params=error_model_params,
        ),
        fresh=True,
    )
    stats = _eval_stats(bench, model, f"e{enob:g}:n{nmult}")
    return base_mean - stats.mean


def _full_point(bench, enob, nmult, error_model, error_model_params):
    """One full design point: retrained accuracy statistics."""
    model, _ = bench.registry.get(
        ModelSpec(
            "ams",
            enob=enob,
            nmult=nmult,
            error_model=error_model,
            error_model_params=error_model_params,
        ),
        fresh=True,
    )
    return _eval_stats(bench, model, f"e{enob:g}:n{nmult}")


def _surrogate_bench(bench, spec: ExploreSpec):
    """A workbench for the surrogate stage.

    ``eval_only`` reuses the caller's bench (nothing trains).
    ``short_train`` gets a truncated-epochs config on a scratch cache
    directory: artifact cache names deliberately exclude epoch counts
    (same knobs, longer training, same artifact), so short-train models
    must not land in — or poison — the real cache.
    """
    if spec.surrogate == "eval_only":
        return bench
    from repro.experiments.common import Workbench
    from repro.registry.layout import scratch_cache_dir

    config = dc_replace(
        bench.config,
        retrain_epochs=spec.surrogate_epochs,
        cache_dir=scratch_cache_dir(bench.config, "explore-surrogate"),
    )
    return Workbench(
        config,
        jobs=bench.jobs,
        resume_run=bench.resume_run,
        retries=getattr(bench, "retries", None),
        retry_backoff=getattr(bench, "retry_backoff", None),
    )


@dataclass(frozen=True)
class ExploreResult:
    """Everything :func:`run_explore` learned about the design space."""

    spec: ExploreSpec
    plans: Tuple[PointPlan, ...]
    losses: Dict[str, float]
    loss_stds: Dict[str, float]
    frontier: Tuple[FrontierCell, ...]
    curves: Tuple[Tuple[float, Optional[FrontierCell]], ...]
    baseline_mean: float
    baseline_std: float

    @property
    def counts(self) -> Dict[str, int]:
        out = {"evaluated": 0, "pruned": 0, "merged": 0}
        for plan in self.plans:
            if plan.status == "evaluated":
                out["evaluated"] += 1
            elif plan.status == "merged":
                out["merged"] += 1
            elif plan.status.startswith("pruned"):
                out["pruned"] += 1
        return out


def _cell_payload(cell: FrontierCell) -> dict:
    return {
        "enob": cell.enob,
        "nmult": cell.nmult,
        "eq_enob": cell.eq_enob,
        "emac_pj": cell.emac_pj,
        "loss": cell.loss,
    }


def _journal_outcome(
    spec: ExploreSpec, result: ExploreResult
) -> None:
    """Write the ``explore.point``/``frontier``/``end`` events.

    Called once, after every sweep has completed, iterating the plans
    in their deterministic order — the journal is then a complete,
    order-stable record that :mod:`repro.explore.report` renders
    without recomputing anything.
    """
    for plan in result.plans:
        extra = {}
        if plan.dominated_by is not None:
            extra["dominated_by"] = plan.dominated_by
        if plan.surrogate_loss is not None:
            extra["surrogate_loss"] = plan.surrogate_loss
        token = plan.token()
        if token in result.losses:
            extra["loss"] = result.losses[token]
            extra["loss_std"] = result.loss_stds[token]
        journal_event(
            "explore.point",
            enob=plan.enob,
            nmult=plan.nmult,
            eq_enob=plan.eq_enob,
            emac_pj=plan.emac_pj,
            status=plan.status,
            **extra,
        )
    journal_event(
        "explore.frontier",
        cells=[_cell_payload(c) for c in result.frontier],
        level_curves=[
            {
                "target": target,
                "cell": _cell_payload(cell) if cell is not None else None,
            }
            for target, cell in result.curves
        ],
    )
    counts = result.counts
    journal_event(
        "explore.end",
        evaluated=counts["evaluated"],
        pruned=counts["pruned"],
        merged=counts["merged"],
        frontier_size=len(result.frontier),
    )


def run_explore(bench, spec: ExploreSpec) -> ExploreResult:
    """Search ``spec``'s design space on ``bench``'s sweep engine."""
    plans = canonicalize(plan_points(spec, REFERENCE_NMULT))
    if spec.strategy == "cheap-first":
        plans = prune_analytic(plans)
    journal_event(
        "explore.start",
        name=spec.name,
        points=len(plans),
        strategy=spec.strategy,
    )

    base_model, _ = bench.registry.get(
        ModelSpec("quant", bw=8, bx=8), fresh=True
    )
    base = bench.stats(base_model)

    if spec.strategy == "cheap-first":
        sbench = _surrogate_bench(bench, spec)
        if sbench is not bench:
            sbase_model, _ = sbench.registry.get(
                ModelSpec("quant", bw=8, bx=8), fresh=True
            )
            sbase_mean = sbench.stats(sbase_model).mean
            point_fn = _surrogate_train_point
        else:
            sbase_mean = base.mean
            point_fn = _surrogate_point
        candidates = [p for p in plans if p.status == "candidate"]
        points = [
            SweepPoint(
                key=f"surrogate:{p.token()}",
                args=(
                    p.enob,
                    p.nmult,
                    sbase_mean,
                    spec.error_model,
                    spec.error_model_params,
                ),
                requires=("quant-8-8",),
            )
            for p in candidates
        ]
        surrogate_losses = dict(
            zip(
                (p.token() for p in candidates),
                (
                    float(v)
                    for v in sweep_map(sbench, point_fn, points, dict(ARTIFACTS))
                ),
            )
        )
        plans = prune_surrogate(
            plans, surrogate_losses, spec.surrogate_margin
        )

    survivors = [p for p in plans if p.status == "candidate"]
    if not survivors:  # pragma: no cover - every prune keeps >= 1 point
        raise ConfigError("search pruned every point; nothing to evaluate")
    points = [
        SweepPoint(
            key=f"full:{p.token()}",
            args=(
                p.enob,
                p.nmult,
                spec.error_model,
                spec.error_model_params,
            ),
            requires=("quant-8-8",),
        )
        for p in survivors
    ]
    stats = sweep_map(bench, _full_point, points, dict(ARTIFACTS))

    losses: Dict[str, float] = {}
    loss_stds: Dict[str, float] = {}
    evaluated = {}
    for plan, stat in zip(survivors, stats):
        token = plan.token()
        losses[token] = float(base.mean - stat.mean)
        loss_stds[token] = float(stat.std)
        evaluated[token] = True
    plans = [
        dc_replace(p, status="evaluated")
        if p.token() in evaluated
        else p
        for p in plans
    ]

    frontier = pareto_frontier(plans, losses, spec.loss_resolution)
    curves = level_curves(plans, losses, spec.loss_targets)
    result = ExploreResult(
        spec=spec,
        plans=tuple(plans),
        losses=losses,
        loss_stds=loss_stds,
        frontier=tuple(frontier),
        curves=tuple(curves),
        baseline_mean=float(base.mean),
        baseline_std=float(base.std),
    )
    _journal_outcome(spec, result)
    return result
