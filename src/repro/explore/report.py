"""Render an exploration's outcome from its run journal.

Everything here is a pure function of the journaled ``explore.*``
events — nothing recomputes losses or re-runs pruning — so the same
journal always renders the same bytes.  That property is what lets a
``--resume`` of an interrupted exploration print a report identical to
the uninterrupted run's, and what lets ``repro obs summary`` show the
frontier long after the run finished.

Grid legend (the Fig. 8 reading: rows are Nmult, columns ENOB):

- ``L% / EfJ`` — fully evaluated: measured accuracy loss and E_MAC;
- ``=``  — merged into an Eq. 2 equivalence class representative;
- ``x``  — pruned analytically (energy-dominated before any training);
- ``s``  — pruned by the surrogate stage;
- ``.``  — not part of the spec's design space.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.utils.tabulate import format_table

_STATUS_MARK = {
    "merged": "=",
    "pruned_analytic": "x",
    "pruned_surrogate": "s",
}


def explore_events(events: List[dict]) -> List[dict]:
    """The ``explore.*`` subset of a journal, in journal order."""
    return [
        e for e in events if str(e.get("event", "")).startswith("explore.")
    ]


def _points(events: List[dict]) -> List[dict]:
    return [e for e in events if e.get("event") == "explore.point"]


def _single(events: List[dict], name: str) -> Optional[dict]:
    for event in events:
        if event.get("event") == name:
            return event
    return None


def _cell_text(point: dict) -> str:
    if point["status"] == "evaluated":
        return f"{point['loss'] * 100:.2f}% / {point['emac_pj'] * 1000:.0f}fJ"
    return _STATUS_MARK.get(point["status"], "?")


def render_grid(points: List[dict]) -> str:
    """The Fig. 8-style design-space table (rows Nmult, cols ENOB)."""
    enobs = sorted({p["enob"] for p in points})
    nmults = sorted({p["nmult"] for p in points})
    by_cell: Dict[Tuple[float, int], dict] = {
        (p["enob"], p["nmult"]): p for p in points
    }
    headers = ["Nmult \\ ENOB"] + [f"{e:g}" for e in enobs]
    rows = []
    for nmult in nmults:
        row: List[object] = [nmult]
        for enob in enobs:
            point = by_cell.get((enob, nmult))
            row.append(_cell_text(point) if point is not None else ".")
        rows.append(row)
    return format_table(headers, rows, title="Design space (loss / E_MAC)")


def render_frontier(frontier: Optional[dict]) -> str:
    """The journaled Pareto frontier as a table."""
    cells = frontier["cells"] if frontier else []
    rows = [
        [
            f"{c['enob']:g}",
            c["nmult"],
            f"{c['eq_enob']:g}",
            f"{c['emac_pj'] * 1000:.1f}",
            f"{c['loss'] * 100:.2f}%",
        ]
        for c in cells
    ]
    return format_table(
        ["ENOB", "Nmult", "eq-ENOB", "E_MAC (fJ)", "loss"],
        rows,
        title="Pareto frontier (energy vs accuracy loss)",
    )


def render_level_curves(frontier: Optional[dict]) -> str:
    """Minimum E_MAC per accuracy-loss target (the lookup-table use)."""
    curves = frontier["level_curves"] if frontier else []
    rows = []
    for entry in curves:
        target = f"<= {entry['target'] * 100:.2f}%"
        cell = entry["cell"]
        if cell is None:
            rows.append([target, "-", "-", "unreachable on this grid"])
            continue
        rows.append(
            [
                target,
                f"{cell['enob']:g}",
                cell["nmult"],
                f"{cell['emac_pj'] * 1000:.1f} fJ",
            ]
        )
    return format_table(
        ["loss target", "ENOB", "Nmult", "min E_MAC"],
        rows,
        title="Level curves (min energy per loss target)",
    )


def render_explore(events: List[dict]) -> str:
    """The full report: header, grid, frontier, level curves, legend.

    ``events`` is a journal's event list (:func:`repro.obs.journal.
    read_events`); non-explore events are ignored.  Raises ``KeyError``
    only on a journal that has ``explore.point`` events violating the
    schema — callers should gate on :func:`explore_events` being
    non-empty.
    """
    events = explore_events(events)
    start = _single(events, "explore.start") or {}
    end = _single(events, "explore.end") or {}
    points = _points(events)
    lines = [
        f"Exploration '{start.get('name', '?')}' "
        f"[{start.get('strategy', '?')}]: "
        f"{len(points)} points -> {end.get('evaluated', '?')} evaluated, "
        f"{end.get('pruned', '?')} pruned, {end.get('merged', '?')} merged",
        "",
        render_grid(points),
        "legend: = merged into an Eq. 2 class representative, "
        "x pruned analytically, s pruned by the surrogate",
        "",
        render_frontier(_single(events, "explore.frontier")),
        "",
        render_level_curves(_single(events, "explore.frontier")),
    ]
    return "\n".join(lines)
