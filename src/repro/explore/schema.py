"""Validated hardware-knob specs for the design-space explorer.

A spec is a YAML or JSON mapping describing the (ENOB, Nmult) design
space to search and the hardware knobs shared by every point.  Two
mutually exclusive modes are auto-detected:

**Knob mode** (a ``hardware:`` section) — the industrialized form::

    name: survey-grid
    hardware:
      enob: {start: 4.0, stop: 8.0, step: 0.25}   # or an explicit list
      nmult: [2, 4, 8, 16, 32, 64]
      adc:
        library: custom        # survey (paper Eq. 3) | custom
        knee_enob: 5.5
        flat_energy_pj: 0.3
        intercept_db: 38.3
      reuse_policy: reuse      # reuse | reread
      error_model: lumped_gaussian
    search:
      strategy: cheap-first    # cheap-first | exhaustive
    loss_targets: [0.01, 0.02, 0.05]

**Legacy point-list mode** (a top-level ``points:`` list) — the shape
the hand-run experiment scripts used::

    points:
      - {enob: 5.0, nmult: 8}
      - {enob: 6.0, nmult: 16}

Mixing the two modes is rejected.  Validation is fail-fast with
did-you-mean suggestions on unknown keys and enum values, mirroring
:func:`repro.experiments.config.make_config`; every error is a
:class:`~repro.errors.ConfigError` raised before any model trains.
"""

from __future__ import annotations

import difflib
import json
import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.energy.adc import ADCLibrary
from repro.energy.emac import EnergyModel
from repro.errors import ConfigError

#: Recognized search strategies.
STRATEGIES: Tuple[str, ...] = ("cheap-first", "exhaustive")

#: Recognized surrogate kinds for the cheap-first middle stage.
SURROGATES: Tuple[str, ...] = ("eval_only", "short_train")

#: Recognized ADC reuse policies (see SNIPPETS-style knob specs): with
#: ``reread`` the DAC inputs are re-read per MAC instead of held, which
#: costs a fixed per-MAC energy adder.
REUSE_POLICIES: Tuple[str, ...] = ("reuse", "reread")

#: Recognized ADC libraries.
ADC_LIBRARIES: Tuple[str, ...] = ("survey", "custom")

_TOP_KEYS = ("name", "hardware", "points", "search", "loss_targets")
_HARDWARE_KEYS = (
    "enob",
    "nmult",
    "adc",
    "reference_scaling",
    "reuse_policy",
    "multiplier_energy_pj",
    "reread_energy_pj",
    "error_model",
    "error_model_params",
)
_ADC_KEYS = (
    "library",
    "knee_enob",
    "flat_energy_pj",
    "slope_db_per_bit",
    "intercept_db",
)
_ADC_CUSTOM_ONLY = _ADC_KEYS[1:]
_SEARCH_KEYS = (
    "strategy",
    "surrogate",
    "surrogate_epochs",
    "surrogate_margin",
    "loss_resolution",
    "max_points",
)
_RANGE_KEYS = ("start", "stop", "step")
_POINT_KEYS = ("enob", "nmult")

#: Default cap on expanded grid size (override via ``search.max_points``).
DEFAULT_MAX_POINTS = 4096


def _did_you_mean(value: str, options: Sequence[str]) -> str:
    close = difflib.get_close_matches(str(value), list(options), n=1)
    return f" (did you mean {close[0]!r}?)" if close else ""


def _check_keys(section: str, data: dict, allowed: Sequence[str]) -> None:
    if not isinstance(data, dict):
        raise ConfigError(f"{section} must be a mapping, got {type(data).__name__}")
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        hints = ", ".join(
            f"{key!r}{_did_you_mean(key, allowed)}" for key in unknown
        )
        raise ConfigError(
            f"unknown {section} key{'s' if len(unknown) > 1 else ''} "
            f"{hints}; valid keys: {sorted(allowed)}"
        )


def _check_enum(section: str, value, options: Sequence[str]) -> str:
    if value not in options:
        raise ConfigError(
            f"unknown {section} {value!r}; options: "
            f"{list(options)}{_did_you_mean(value, options)}"
        )
    return value


def _number(section: str, value) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(
            f"{section} must be a number, got {value!r}"
        )
    return float(value)


@dataclass(frozen=True)
class ExplorePoint:
    """One raw (ENOB, Nmult) candidate of a spec's design space."""

    enob: float
    nmult: int

    def __post_init__(self):
        if self.enob <= 0:
            raise ConfigError(f"enob must be > 0, got {self.enob}")
        if self.nmult < 1:
            raise ConfigError(f"nmult must be >= 1, got {self.nmult}")

    def token(self) -> str:
        """Stable string identity, e.g. ``e5.5:n8``."""
        return f"e{self.enob:g}:n{self.nmult}"


@dataclass(frozen=True)
class ExploreSpec:
    """A fully validated exploration spec (see the module docstring).

    ``points`` is the expanded raw design space in deterministic order
    (Nmult-major for knob mode, listed order for legacy mode); the
    search strategy decides which of them are worth a full retrain
    (:mod:`repro.explore.strategy`).
    """

    name: str = "explore"
    mode: str = "knobs"
    points: Tuple[ExplorePoint, ...] = ()
    adc: ADCLibrary = ADCLibrary()
    reuse_policy: str = "reuse"
    multiplier_energy_pj: float = 0.0
    error_model: Optional[str] = None
    error_model_params: Tuple[Tuple[str, object], ...] = ()
    strategy: str = "cheap-first"
    surrogate: str = "eval_only"
    surrogate_epochs: int = 1
    surrogate_margin: float = 0.02
    loss_resolution: float = 0.01
    loss_targets: Tuple[float, ...] = (0.004, 0.01, 0.02)

    def energy_model(self) -> EnergyModel:
        """The Eq. 3-4 model implied by this spec's hardware knobs."""
        return EnergyModel(
            multiplier_energy_pj=self.multiplier_energy_pj,
            library=self.adc,
        )


def _expand_enobs(section: str, value) -> Tuple[float, ...]:
    if isinstance(value, dict):
        _check_keys(section, value, _RANGE_KEYS)
        missing = [key for key in _RANGE_KEYS if key not in value]
        if missing:
            raise ConfigError(f"{section} range missing {missing}")
        start = _number(f"{section}.start", value["start"])
        stop = _number(f"{section}.stop", value["stop"])
        step = _number(f"{section}.step", value["step"])
        if step <= 0:
            raise ConfigError(f"{section}.step must be > 0, got {step}")
        if stop < start:
            raise ConfigError(
                f"{section} range has stop {stop} < start {start}"
            )
        values: List[float] = []
        k = 0
        while True:
            # round() keeps the grid values exact (4.25, not 4.2500000003)
            # so point tokens and journal payloads stay readable.
            point = round(start + k * step, 10)
            if point > stop + 1e-9:
                break
            values.append(point)
            k += 1
        return tuple(values)
    if isinstance(value, (list, tuple)):
        if not value:
            raise ConfigError(f"{section} list is empty")
        return tuple(_number(section, v) for v in value)
    raise ConfigError(
        f"{section} must be a list or a {{start, stop, step}} range, "
        f"got {value!r}"
    )


def _expand_nmults(section: str, value) -> Tuple[int, ...]:
    if not isinstance(value, (list, tuple)) or not value:
        raise ConfigError(f"{section} must be a non-empty list of integers")
    nmults = []
    for v in value:
        if isinstance(v, bool) or not isinstance(v, int):
            raise ConfigError(
                f"{section} entries must be integers, got {v!r}"
            )
        if v < 1:
            raise ConfigError(f"{section} entries must be >= 1, got {v}")
        nmults.append(v)
    return tuple(nmults)


def _parse_adc(data: dict) -> ADCLibrary:
    _check_keys("hardware.adc", data, _ADC_KEYS)
    library = _check_enum(
        "hardware.adc.library", data.get("library", "survey"), ADC_LIBRARIES
    )
    custom_given = sorted(set(data) & set(_ADC_CUSTOM_ONLY))
    if library == "survey":
        if custom_given:
            raise ConfigError(
                f"hardware.adc keys {custom_given} apply only to "
                "library: custom (the survey library is the paper's "
                "fixed Eq. 3 bound)"
            )
        return ADCLibrary()
    kwargs = {"name": "custom"}
    for key, attr in (
        ("knee_enob", "knee_enob"),
        ("flat_energy_pj", "flat_energy_pj"),
        ("slope_db_per_bit", "slope_db_per_bit"),
        ("intercept_db", "intercept_db"),
    ):
        if key in data:
            kwargs[attr] = _number(f"hardware.adc.{key}", data[key])
    return ADCLibrary(**kwargs)


def _parse_error_model(
    hardware: dict, reference_scaling: float
) -> Tuple[Optional[str], Tuple[Tuple[str, object], ...]]:
    """Resolve the error-model knobs, coupling in reference scaling.

    ``reference_scaling: alpha < 1`` is one physical knob with two
    faces: the ADC reference is scaled (cheaper error per paper
    Section 4, modeled by the registered ``reference_scaled`` error
    model) while the thermal-limited conversion pays ``1/alpha^2`` in
    energy (:class:`~repro.energy.adc.ADCLibrary`).  Naming a
    *different* error model alongside it would silently decouple the
    two faces, so that combination is rejected.
    """
    model = hardware.get("error_model")
    params = hardware.get("error_model_params", {})
    if params and model is None:
        raise ConfigError(
            "hardware.error_model_params requires an explicit error_model"
        )
    if not isinstance(params, dict):
        raise ConfigError(
            "hardware.error_model_params must be a mapping, got "
            f"{params!r}"
        )
    canonical = tuple(sorted((str(k), v) for k, v in params.items()))
    if reference_scaling < 1.0:
        if model not in (None, "reference_scaled"):
            raise ConfigError(
                "hardware.reference_scaling couples to the "
                "'reference_scaled' error model; it cannot combine "
                f"with error_model {model!r}"
            )
        given_alpha = dict(canonical).get("alpha")
        if given_alpha is not None and given_alpha != reference_scaling:
            raise ConfigError(
                f"hardware.error_model_params alpha {given_alpha} "
                f"contradicts reference_scaling {reference_scaling}"
            )
        model = "reference_scaled"
        canonical = (("alpha", reference_scaling),)
    if model is not None:
        from repro.ams.models import get_model

        # Fail fast (with the registry's did-you-mean) before training.
        get_model(str(model), dict(canonical))
        model = str(model)
    return model, canonical


def _parse_hardware(data: dict) -> dict:
    _check_keys("hardware", data, _HARDWARE_KEYS)
    for key in ("enob", "nmult"):
        if key not in data:
            raise ConfigError(f"hardware section missing {key!r}")
    enobs = _expand_enobs("hardware.enob", data["enob"])
    if any(e <= 0 for e in enobs):
        raise ConfigError("hardware.enob values must be > 0")
    nmults = _expand_nmults("hardware.nmult", data["nmult"])
    if len(set(enobs)) != len(enobs):
        raise ConfigError("hardware.enob contains duplicates")
    if len(set(nmults)) != len(nmults):
        raise ConfigError("hardware.nmult contains duplicates")

    adc = _parse_adc(data.get("adc", {}))
    reference_scaling = _number(
        "hardware.reference_scaling", data.get("reference_scaling", 1.0)
    )
    if not 0.0 < reference_scaling <= 1.0:
        raise ConfigError(
            "hardware.reference_scaling must be in (0, 1], got "
            f"{reference_scaling}"
        )
    if reference_scaling < 1.0:
        adc = replace(adc, reference_scale=reference_scaling)

    reuse_policy = _check_enum(
        "hardware.reuse_policy",
        data.get("reuse_policy", "reuse"),
        REUSE_POLICIES,
    )
    multiplier = _number(
        "hardware.multiplier_energy_pj",
        data.get("multiplier_energy_pj", 0.0),
    )
    if multiplier < 0:
        raise ConfigError(
            f"hardware.multiplier_energy_pj must be >= 0, got {multiplier}"
        )
    if "reread_energy_pj" in data and reuse_policy != "reread":
        raise ConfigError(
            "hardware.reread_energy_pj applies only with "
            "reuse_policy: reread"
        )
    if reuse_policy == "reread":
        reread = _number(
            "hardware.reread_energy_pj", data.get("reread_energy_pj", 0.05)
        )
        if reread < 0:
            raise ConfigError(
                f"hardware.reread_energy_pj must be >= 0, got {reread}"
            )
        multiplier += reread

    error_model, error_model_params = _parse_error_model(
        data, reference_scaling
    )
    return {
        "enobs": enobs,
        "nmults": nmults,
        "adc": adc,
        "reuse_policy": reuse_policy,
        "multiplier_energy_pj": multiplier,
        "error_model": error_model,
        "error_model_params": error_model_params,
    }


def _parse_points(data) -> Tuple[ExplorePoint, ...]:
    if not isinstance(data, (list, tuple)) or not data:
        raise ConfigError(
            "points must be a non-empty list of {enob, nmult} mappings"
        )
    points = []
    seen = set()
    for index, entry in enumerate(data):
        _check_keys(f"points[{index}]", entry, _POINT_KEYS)
        missing = [key for key in _POINT_KEYS if key not in entry]
        if missing:
            raise ConfigError(f"points[{index}] missing {missing}")
        enob = _number(f"points[{index}].enob", entry["enob"])
        nmult = entry["nmult"]
        if isinstance(nmult, bool) or not isinstance(nmult, int):
            raise ConfigError(
                f"points[{index}].nmult must be an integer, got {nmult!r}"
            )
        point = ExplorePoint(enob=enob, nmult=nmult)
        if (point.enob, point.nmult) in seen:
            raise ConfigError(
                f"points[{index}] duplicates ({point.token()})"
            )
        seen.add((point.enob, point.nmult))
        points.append(point)
    return tuple(points)


def _parse_search(data: dict) -> dict:
    _check_keys("search", data, _SEARCH_KEYS)
    strategy = _check_enum(
        "search.strategy", data.get("strategy", "cheap-first"), STRATEGIES
    )
    surrogate = _check_enum(
        "search.surrogate", data.get("surrogate", "eval_only"), SURROGATES
    )
    epochs = data.get("surrogate_epochs", 1)
    if isinstance(epochs, bool) or not isinstance(epochs, int) or epochs < 1:
        raise ConfigError(
            f"search.surrogate_epochs must be an integer >= 1, got {epochs!r}"
        )
    if "surrogate_epochs" in data and surrogate != "short_train":
        raise ConfigError(
            "search.surrogate_epochs applies only with "
            "surrogate: short_train"
        )
    margin = _number(
        "search.surrogate_margin", data.get("surrogate_margin", 0.02)
    )
    if margin < 0:
        raise ConfigError(
            f"search.surrogate_margin must be >= 0, got {margin}"
        )
    resolution = _number(
        "search.loss_resolution", data.get("loss_resolution", 0.01)
    )
    if resolution <= 0:
        raise ConfigError(
            f"search.loss_resolution must be > 0, got {resolution}"
        )
    max_points = data.get("max_points", DEFAULT_MAX_POINTS)
    if (
        isinstance(max_points, bool)
        or not isinstance(max_points, int)
        or max_points < 1
    ):
        raise ConfigError(
            f"search.max_points must be an integer >= 1, got {max_points!r}"
        )
    return {
        "strategy": strategy,
        "surrogate": surrogate,
        "surrogate_epochs": epochs,
        "surrogate_margin": margin,
        "loss_resolution": resolution,
        "max_points": max_points,
    }


def _parse_loss_targets(data) -> Tuple[float, ...]:
    if not isinstance(data, (list, tuple)) or not data:
        raise ConfigError("loss_targets must be a non-empty list")
    targets = tuple(_number("loss_targets", t) for t in data)
    for t in targets:
        if not 0.0 < t < 1.0:
            raise ConfigError(
                f"loss_targets must be fractions in (0, 1), got {t}"
            )
    if list(targets) != sorted(targets):
        raise ConfigError("loss_targets must be sorted ascending")
    if len(set(targets)) != len(targets):
        raise ConfigError("loss_targets contains duplicates")
    return targets


def spec_from_dict(data: dict, name: Optional[str] = None) -> ExploreSpec:
    """Validate a decoded spec mapping into an :class:`ExploreSpec`.

    Mode is auto-detected: a ``hardware`` section means knob mode, a
    top-level ``points`` list means legacy mode; both (or neither) is
    an error.
    """
    _check_keys("spec", data, _TOP_KEYS)
    has_hardware = "hardware" in data
    has_points = "points" in data
    if has_hardware and has_points:
        raise ConfigError(
            "spec mixes knob mode ('hardware') and legacy point-list "
            "mode ('points'); pick one"
        )
    if not has_hardware and not has_points:
        raise ConfigError(
            "spec needs either a 'hardware' section (knob mode) or a "
            "'points' list (legacy mode)"
        )
    spec_name = data.get("name", name or "explore")
    if not isinstance(spec_name, str) or not spec_name:
        raise ConfigError(f"name must be a non-empty string, got {spec_name!r}")
    search = _parse_search(data.get("search", {}))
    max_points = search.pop("max_points")
    kwargs: Dict[str, object] = {"name": spec_name, **search}
    if "loss_targets" in data:
        kwargs["loss_targets"] = _parse_loss_targets(data["loss_targets"])

    if has_hardware:
        hardware = _parse_hardware(data["hardware"])
        enobs, nmults = hardware.pop("enobs"), hardware.pop("nmults")
        count = len(enobs) * len(nmults)
        if count > max_points:
            raise ConfigError(
                f"spec expands to {count} points, over the "
                f"search.max_points cap of {max_points}"
            )
        # Nmult-major order, matching the Fig. 8 table's row layout.
        points = tuple(
            ExplorePoint(enob=e, nmult=n) for n in nmults for e in enobs
        )
        return ExploreSpec(mode="knobs", points=points, **hardware, **kwargs)

    points = _parse_points(data["points"])
    if len(points) > max_points:
        raise ConfigError(
            f"spec lists {len(points)} points, over the "
            f"search.max_points cap of {max_points}"
        )
    return ExploreSpec(mode="points", points=points, **kwargs)


def load_spec(path: str) -> ExploreSpec:
    """Load and validate a spec file (YAML or JSON, by extension)."""
    if not os.path.exists(path):
        raise ConfigError(f"no spec file at {path}")
    with open(path) as fh:
        text = fh.read()
    stem = os.path.splitext(os.path.basename(path))[0]
    if path.endswith(".json"):
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"malformed JSON in {path}: {exc}") from None
    else:
        try:
            import yaml
        except ImportError:  # pragma: no cover - baked into the image
            raise ConfigError(
                f"PyYAML is unavailable; rewrite {path} as JSON"
            ) from None
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ConfigError(f"malformed YAML in {path}: {exc}") from None
    if not isinstance(data, dict):
        raise ConfigError(
            f"spec file {path} must decode to a mapping, got "
            f"{type(data).__name__}"
        )
    return spec_from_dict(data, name=stem)
