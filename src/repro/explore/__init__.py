"""Spec-driven exploration of the (ENOB, Nmult) hardware design space.

The paper's Fig. 8 is a lookup table: a circuit designer names an
accuracy budget and reads off the cheapest (ENOB, Nmult) point.  This
package turns that reading into a first-class, resumable service:

- :mod:`repro.explore.schema` — validated YAML/JSON hardware-knob specs
  (``load_spec`` / ``spec_from_dict`` -> :class:`ExploreSpec`);
- :mod:`repro.explore.strategy` — deterministic cheap-first search
  (Eq. 2 canonicalization, analytic and surrogate dominance pruning,
  quantized Pareto frontier);
- :mod:`repro.explore.runner` — :func:`run_explore` executes the plan
  on the :func:`repro.parallel.sweep_map` engine and journals
  ``explore.*`` events;
- :mod:`repro.explore.report` — byte-stable report rendering from the
  run journal alone.

CLI: ``repro explore spec.yaml --jobs 4`` (see ``docs/explore.md``).
"""

from repro.explore.report import render_explore
from repro.explore.runner import ExploreResult, run_explore
from repro.explore.schema import (
    ExplorePoint,
    ExploreSpec,
    load_spec,
    spec_from_dict,
)
from repro.explore.strategy import (
    FrontierCell,
    PointPlan,
    canonicalize,
    level_curves,
    pareto_frontier,
    plan_points,
    prune_analytic,
    prune_surrogate,
)

__all__ = [
    "ExplorePoint",
    "ExploreSpec",
    "ExploreResult",
    "FrontierCell",
    "PointPlan",
    "canonicalize",
    "level_curves",
    "load_spec",
    "pareto_frontier",
    "plan_points",
    "prune_analytic",
    "prune_surrogate",
    "render_explore",
    "run_explore",
    "spec_from_dict",
]
