"""Cheap-first search over a spec's (ENOB, Nmult) design space.

The explorer never retrains blindly.  Three progressively more
expensive filters shrink the raw grid before any full AMS retraining
happens, and every filter is deterministic so a ``--resume`` of an
interrupted run reconstructs the identical plan in-process:

1. **Eq. 2 canonicalization** (strategy-independent, exact physics):
   two points with equal equivalent ENOB inject *identically
   distributed* error, so their retrained accuracy differs only by the
   RNG stream.  Each equivalence class keeps its minimum-energy member;
   the rest are ``merged`` into it.
2. **Analytic dominance** (cheap-first only): using the spec's Eq. 3-4
   energy model alone, a representative is ``pruned_analytic`` when
   another representative has at least its equivalent ENOB for at most
   its energy (one strictly better).  This catches the flat region of
   the ADC energy curve, where raising ENOB is free.
3. **Surrogate dominance** (cheap-first only): after a cheap surrogate
   sweep (eval-only noise injection or a short retrain), a
   representative is ``pruned_surrogate`` when a no-more-expensive
   representative beats its surrogate loss by more than
   ``surrogate_margin``, or when it sits on the accuracy-saturation
   plateau above the cheapest saturated point.

What survives is ``evaluated`` with a full retrain.  The reported
Pareto frontier quantizes losses to ``loss_resolution`` bins so that
cheap-first and exhaustive runs of the same spec report the same
frontier despite pruning-order differences.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ams.vmac import equivalent_enob
from repro.explore.schema import ExplorePoint, ExploreSpec

#: Lifecycle of a planned point.  ``merged``/``pruned_*`` points carry a
#: ``dominated_by`` token naming the point that made them redundant.
STATUSES = (
    "candidate",
    "merged",
    "pruned_analytic",
    "pruned_surrogate",
    "evaluated",
)

#: All surrogate and full-eval losses are mapped through the reference
#: Nmult, so eq-ENOB rounding only needs to absorb float noise from
#: Eq. 2's log2 — 9 decimals is far below any physical distinction.
_EQ_DECIMALS = 9


@dataclass(frozen=True)
class PointPlan:
    """One raw spec point annotated with its search lifecycle."""

    enob: float
    nmult: int
    eq_enob: float
    emac_pj: float
    status: str = "candidate"
    dominated_by: Optional[str] = None
    surrogate_loss: Optional[float] = None

    def token(self) -> str:
        return f"e{self.enob:g}:n{self.nmult}"


def plan_points(
    spec: ExploreSpec, reference_nmult: int = 8
) -> List[PointPlan]:
    """Annotate every raw spec point with eq-ENOB and energy."""
    model = spec.energy_model()
    return [
        PointPlan(
            enob=p.enob,
            nmult=p.nmult,
            eq_enob=round(
                equivalent_enob(p.enob, p.nmult, reference_nmult),
                _EQ_DECIMALS,
            ),
            emac_pj=model.emac(p.enob, p.nmult),
        )
        for p in spec.points
    ]


def canonicalize(plans: List[PointPlan]) -> List[PointPlan]:
    """Collapse Eq. 2 equivalence classes onto min-energy members.

    Applies to **every** strategy (including exhaustive): members of a
    class are physically the same design point as far as injected error
    goes, so retraining more than one member only measures RNG noise.
    The representative is the minimum-energy member; ties break toward
    the smaller Nmult (fewer multipliers sharing one ADC), which is
    deterministic because raw points are unique.
    """
    by_class: Dict[float, List[int]] = {}
    for index, plan in enumerate(plans):
        by_class.setdefault(plan.eq_enob, []).append(index)
    out = list(plans)
    for members in by_class.values():
        rep = min(
            members,
            key=lambda i: (plans[i].emac_pj, plans[i].nmult, plans[i].enob),
        )
        for index in members:
            if index != rep:
                out[index] = replace(
                    plans[index],
                    status="merged",
                    dominated_by=plans[rep].token(),
                )
    return out


def prune_analytic(plans: List[PointPlan]) -> List[PointPlan]:
    """Drop candidates dominated on (eq-ENOB, energy) analytically.

    B dominates A iff ``eq_B >= eq_A`` and ``emac_B <= emac_A`` with at
    least one strict.  After canonicalization eq-ENOBs are unique among
    candidates, so "one strict" always holds when both inequalities do.
    The dominator recorded is the best such B (max eq, then min energy)
    for a stable ``dominated_by`` token.
    """
    out = list(plans)
    candidates = [i for i, p in enumerate(plans) if p.status == "candidate"]
    for a in candidates:
        dominators = [
            b
            for b in candidates
            if b != a
            and plans[b].eq_enob >= plans[a].eq_enob
            and plans[b].emac_pj <= plans[a].emac_pj
            and (
                plans[b].eq_enob > plans[a].eq_enob
                or plans[b].emac_pj < plans[a].emac_pj
            )
        ]
        if dominators:
            best = max(
                dominators,
                key=lambda i: (plans[i].eq_enob, -plans[i].emac_pj),
            )
            out[a] = replace(
                plans[a],
                status="pruned_analytic",
                dominated_by=plans[best].token(),
            )
    return out


def prune_surrogate(
    plans: List[PointPlan],
    surrogate_losses: Dict[str, float],
    margin: float,
) -> List[PointPlan]:
    """Drop candidates the surrogate shows to be dominated.

    Two rules, both with a safety ``margin`` because the surrogate is
    only a proxy for the fully retrained loss:

    - *dominance*: A is pruned when some B costs no more energy and its
      surrogate loss beats A's by more than ``margin``.
    - *saturation*: among points whose surrogate loss is within
      ``margin`` of the best observed (the accuracy plateau, where more
      ENOB buys nothing), only the cheapest survives.
    """
    out = list(plans)
    candidates = [i for i, p in enumerate(plans) if p.status == "candidate"]
    for i in candidates:
        out[i] = replace(
            plans[i], surrogate_loss=surrogate_losses[plans[i].token()]
        )
    if not candidates:
        return out

    def loss(i: int) -> float:
        return surrogate_losses[plans[i].token()]

    best_loss = min(loss(i) for i in candidates)
    plateau = [i for i in candidates if loss(i) <= best_loss + margin]
    keeper = min(
        plateau, key=lambda i: (plans[i].emac_pj, -plans[i].eq_enob)
    )
    for a in candidates:
        if a in plateau and a != keeper:
            out[a] = replace(
                out[a],
                status="pruned_surrogate",
                dominated_by=plans[keeper].token(),
            )
            continue
        dominators = [
            b
            for b in candidates
            if b != a
            and plans[b].emac_pj <= plans[a].emac_pj
            and loss(b) + margin < loss(a)
        ]
        if dominators:
            best = min(
                dominators, key=lambda i: (loss(i), plans[i].emac_pj)
            )
            out[a] = replace(
                out[a],
                status="pruned_surrogate",
                dominated_by=plans[best].token(),
            )
    return out


@dataclass(frozen=True)
class FrontierCell:
    """One Pareto-frontier entry: an evaluated point and its loss."""

    enob: float
    nmult: int
    eq_enob: float
    emac_pj: float
    loss: float

    def token(self) -> str:
        return f"e{self.enob:g}:n{self.nmult}"


def pareto_frontier(
    plans: List[PointPlan],
    losses: Dict[str, float],
    resolution: float,
) -> List[FrontierCell]:
    """Energy-loss Pareto frontier over the evaluated points.

    Losses are quantized to ``resolution`` bins before comparison so
    that sub-resolution accuracy noise — e.g. between a cheap-first run
    and an exhaustive run that retrained extra plateau points — cannot
    flip frontier membership.  Within a bin the tie-break prefers lower
    energy, then higher equivalent ENOB.  Returned in ascending-energy
    order.
    """
    cells = [
        FrontierCell(
            enob=p.enob,
            nmult=p.nmult,
            eq_enob=p.eq_enob,
            emac_pj=p.emac_pj,
            loss=losses[p.token()],
        )
        for p in plans
        if p.status == "evaluated"
    ]

    def qloss(cell: FrontierCell) -> int:
        return int(round(max(cell.loss, 0.0) / resolution))

    cells.sort(key=lambda c: (c.emac_pj, qloss(c), -c.eq_enob, c.nmult))
    frontier: List[FrontierCell] = []
    best_bin: Optional[int] = None
    for cell in cells:
        bin_ = qloss(cell)
        if best_bin is None or bin_ < best_bin:
            frontier.append(cell)
            best_bin = bin_
    return frontier


def level_curves(
    plans: List[PointPlan],
    losses: Dict[str, float],
    targets: Sequence[float],
) -> List[Tuple[float, Optional[FrontierCell]]]:
    """Per loss target, the cheapest evaluated point meeting it.

    The Fig. 8 reading of the grid: "what is the minimum energy per MAC
    for accuracy loss below X?".  Targets the measured grid never
    reaches map to ``None``.
    """
    evaluated = [
        FrontierCell(
            enob=p.enob,
            nmult=p.nmult,
            eq_enob=p.eq_enob,
            emac_pj=p.emac_pj,
            loss=losses[p.token()],
        )
        for p in plans
        if p.status == "evaluated"
    ]
    out: List[Tuple[float, Optional[FrontierCell]]] = []
    for target in targets:
        feasible = [c for c in evaluated if c.loss <= target]
        if not feasible:
            out.append((float(target), None))
            continue
        best = min(feasible, key=lambda c: (c.emac_pj, -c.eq_enob, c.nmult))
        out.append((float(target), best))
    return out
