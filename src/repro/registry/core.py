"""The tiered, multi-tenant model-artifact registry.

:class:`ModelRegistry` is the single model-acquisition path: every
consumer — the experiment harness, the in-process serving engine, the
multi-process cluster — asks it for ``(model, metadata)`` by
:class:`~repro.serve.spec.ModelSpec`, and the registry decides which
tier answers:

- **warm** — a built model held in memory, compiled if requested,
  ready for :func:`repro.serve.executor.forward_with_request_noise`.
  One LRU pool across tenants, bounded by ``warm_max_entries`` and by
  per-tenant byte quotas.
- **cold** — the on-disk ``.npz`` artifact under the workbench cache
  layout (:mod:`repro.registry.layout`).  A warm miss with a cold hit
  loads and *promotes*; nothing retrains.
- **evictable** — warm LRU victims still pinned by a consumer (a
  serving cluster holding the published mmap).  They leave the LRU
  accounting immediately but are only dropped when the last pin is
  released, so eviction can never yank a model out from under a
  replica.

A true miss (no artifact on disk) trains via the workbench's
train-or-load path — the *identical* code the legacy
``Workbench.model`` ran, which is what makes registry-resolved logits
bit-identical to the legacy path for every variant and error model.

Tier traffic is instrumented on a :class:`~repro.obs.MetricRegistry`
(``registry.tier_hit`` / ``tier_miss`` / ``tier_promote`` /
``tier_evict``, labeled by tier and tenant) and journaled as
``registry.tier`` / ``registry.warmup`` events, so ``obs summary``
reconstructs the tier behaviour of a run from its journal alone.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from time import monotonic
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError, ServiceTimeoutError
from repro.obs.journal import journal_event
from repro.obs.metrics import MetricRegistry, default_registry
from repro.registry import layout
from repro.serve.spec import ModelSpec


def model_nbytes(model) -> int:
    """Byte footprint of a model's parameters and buffers."""
    return sum(
        np.asarray(value).nbytes for value in model.state_dict().values()
    )


@dataclass
class WarmEntry:
    """One warm-tier resident: the model plus its serving lock."""

    spec: ModelSpec
    tenant: str
    model: object
    meta: dict
    nbytes: int
    lock: threading.Lock = field(default_factory=threading.Lock)

    @property
    def token(self) -> str:
        return self.spec.token()


class ModelRegistry:
    """Tiered model acquisition over one workbench.

    Parameters
    ----------
    workbench:
        Anything with ``.config``, ``.build(spec)`` and a
        train-or-load entry point — normally a
        :class:`repro.experiments.common.Workbench`.
    warm_max_entries:
        Global LRU capacity of the warm tier (across tenants).
    tenant_quotas:
        ``{tenant: max warm bytes}``.  A tenant without an entry is
        unbounded (the global LRU still applies); quota ``0`` means
        the tenant may never hold a warm entry — its requests are
        served straight from the cold tier every time.
    default_tenant:
        Tenant charged when ``get``/``entry`` are called without one.
    metrics:
        The :class:`~repro.obs.MetricRegistry` tier counters land on
        (default: the process-wide registry, so experiment runs see
        their tier traffic in the final journal snapshot).
    compile_models / backend:
        Lower models to the compiled executor when they enter the warm
        tier, same semantics as the serving engine's knobs.  The cold
        (``fresh=True``) path never compiles, matching the legacy
        workbench behaviour bit for bit.
    """

    def __init__(
        self,
        workbench,
        *,
        warm_max_entries: int = 8,
        tenant_quotas: Optional[Dict[str, int]] = None,
        default_tenant: str = "default",
        metrics: Optional[MetricRegistry] = None,
        compile_models: bool = False,
        backend: Optional[str] = None,
    ):
        if warm_max_entries < 1:
            raise ConfigError(
                f"warm_max_entries must be >= 1, got {warm_max_entries}"
            )
        for tenant, quota in (tenant_quotas or {}).items():
            if quota is not None and quota < 0:
                raise ConfigError(
                    f"tenant {tenant!r} quota must be >= 0 bytes, "
                    f"got {quota}"
                )
        self.workbench = workbench
        self.warm_max_entries = warm_max_entries
        self.tenant_quotas = dict(tenant_quotas or {})
        self.default_tenant = default_tenant
        self.metrics = metrics if metrics is not None else default_registry()
        self.compile_models = compile_models
        self.backend = backend
        self._lock = threading.RLock()
        #: (tenant, token) -> WarmEntry, least recently used first.
        self._warm: "OrderedDict[Tuple[str, str], WarmEntry]" = OrderedDict()
        #: Warm victims still pinned: dropped at last unpin.
        self._evictable: Dict[Tuple[str, str], WarmEntry] = {}
        self._pins: Dict[Tuple[str, str], int] = {}
        #: token -> in-flight background warm-up (deduplication).
        self._warmups: Dict[str, Future] = {}

    # ------------------------------------------------------------------
    # acquisition
    # ------------------------------------------------------------------
    def get(
        self,
        spec: ModelSpec,
        *,
        tenant: Optional[str] = None,
        fresh: bool = False,
    ) -> Tuple[object, dict]:
        """``(model, metadata)`` for ``spec`` — the one entry point.

        ``fresh=True`` reproduces the legacy ``Workbench.model``
        contract exactly: a newly constructed model object per call
        (experiments mutate models — reseeding injectors, loading other
        weights into them — so they must not share the serving pool's
        residents), loaded from the cold tier when the artifact exists,
        trained otherwise.  The warm tier is neither consulted nor
        populated.

        ``fresh=False`` (serving) answers from the warm tier when
        possible, promotes a cold artifact on a warm miss, and trains
        on a true miss; the returned model is the shared warm resident
        (guard forward passes with :meth:`entry`'s lock).
        """
        spec = spec.resolved(self.workbench.config)
        tenant = tenant or self.default_tenant
        if fresh:
            tier = self._present_tier(spec)
            self._count_lookup(tier, tenant)
            model, meta = self._train_or_load(spec)
            return model, meta
        entry = self.entry(spec, tenant=tenant)
        return entry.model, entry.meta

    def entry(
        self, spec: ModelSpec, *, tenant: Optional[str] = None
    ) -> WarmEntry:
        """The warm-tier entry for ``spec``, loading/promoting on miss.

        For a zero-quota tenant the entry is built but never admitted,
        so the caller still gets a usable model while the warm pool
        stays untouched.
        """
        spec = spec.resolved(self.workbench.config)
        tenant = tenant or self.default_tenant
        key = (tenant, spec.token())
        with self._lock:
            entry = self._warm.get(key)
            if entry is not None:
                self._warm.move_to_end(key)
                self._count_lookup("warm", tenant)
                return entry
        # Build outside the registry lock: a cold spec may train for
        # seconds and must not block other tenants' warm hits.
        # Concurrent builders of the same spec are safe — the cold tier
        # is write-then-rename — and the loser's build is discarded.
        tier = self._present_tier(spec)
        self._count_lookup(tier, tenant)
        model, meta = self._train_or_load(spec)
        if self.compile_models:
            from repro.compile import maybe_compiled

            maybe_compiled(model, backend=self.backend)
        entry = WarmEntry(
            spec=spec,
            tenant=tenant,
            model=model,
            meta=meta,
            nbytes=model_nbytes(model),
        )
        with self._lock:
            existing = self._warm.get(key)
            if existing is not None:
                # Lost the build race; the first admission wins.
                self._warm.move_to_end(key)
                return existing
            if self._admit(entry):
                self.metrics.counter(
                    "registry.tier_promote", tenant=tenant
                ).inc()
                journal_event(
                    "registry.tier",
                    spec=entry.token,
                    action="promote",
                    tier="warm",
                    tenant=tenant,
                )
            return entry

    def warm(self, *specs: ModelSpec, tenant: Optional[str] = None):
        """Promote ``specs`` into the warm tier now (train-or-load)."""
        for spec in specs:
            self.entry(spec, tenant=tenant)
        return self

    def warm_async(
        self,
        spec: ModelSpec,
        *,
        tenant: Optional[str] = None,
        deadline_s: Optional[float] = None,
    ) -> Future:
        """Background train-or-load + promotion for ``spec``.

        Returns a future resolving to the spec token when the entry is
        warm.  Warm-ups are deduplicated per token — a request racing
        its own warm-up gets the in-flight future, not a second
        training run.  ``deadline_s`` bounds how long a queued warm-up
        may wait before starting; an expired one journals
        ``registry.warmup`` ``status="expired"`` and fails with
        :class:`~repro.errors.ServiceTimeoutError`.
        """
        spec = spec.resolved(self.workbench.config)
        token = spec.token()
        with self._lock:
            pending = self._warmups.get(token)
            if pending is not None:
                return pending
            future: Future = Future()
            self._warmups[token] = future
        deadline = None if deadline_s is None else monotonic() + deadline_s
        journal_event("registry.warmup", spec=token, status="started")
        self.metrics.counter("registry.warmup_started").inc()

        def _run() -> None:
            try:
                if deadline is not None and monotonic() > deadline:
                    journal_event(
                        "registry.warmup", spec=token, status="expired"
                    )
                    raise ServiceTimeoutError(
                        f"warm-up of {token!r} missed its "
                        f"{deadline_s}s deadline before starting"
                    )
                self.entry(spec, tenant=tenant)
            except BaseException as exc:  # noqa: BLE001 - ship to waiter
                if not isinstance(exc, ServiceTimeoutError):
                    journal_event(
                        "registry.warmup",
                        spec=token,
                        status="failed",
                        error=str(exc),
                    )
                future.set_exception(exc)
            else:
                journal_event("registry.warmup", spec=token, status="done")
                future.set_result(token)
            finally:
                with self._lock:
                    self._warmups.pop(token, None)

        threading.Thread(
            target=_run, name=f"registry-warmup-{token}", daemon=True
        ).start()
        return future

    # ------------------------------------------------------------------
    # pins (consumers holding a published mmap)
    # ------------------------------------------------------------------
    def pin(self, spec: ModelSpec, tenant: Optional[str] = None) -> None:
        """Protect ``spec``'s warm entry from being dropped on eviction.

        An evicted-but-pinned entry moves to the *evictable* tier: it
        stops counting against the LRU and quotas but stays alive until
        :meth:`unpin` releases the last pin.
        """
        key = self._key(spec, tenant)
        with self._lock:
            self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, spec: ModelSpec, tenant: Optional[str] = None) -> None:
        """Release one pin; drops the entry if it was pending eviction."""
        key = self._key(spec, tenant)
        with self._lock:
            count = self._pins.get(key, 0) - 1
            if count > 0:
                self._pins[key] = count
                return
            self._pins.pop(key, None)
            if self._evictable.pop(key, None) is not None:
                journal_event(
                    "registry.tier",
                    spec=key[1],
                    action="drop",
                    tier="evictable",
                    tenant=key[0],
                )

    # ------------------------------------------------------------------
    # eviction and introspection
    # ------------------------------------------------------------------
    def evict(
        self, spec: Optional[ModelSpec] = None,
        tenant: Optional[str] = None,
    ) -> int:
        """Demote warm entries (one spec, or a whole tenant's, or all).

        Returns the number of entries demoted.  Pinned entries land in
        the evictable tier; unpinned ones are dropped outright.  The
        cold tier is untouched — use :func:`repro.registry.layout.
        evict_artifacts` (or the ``registry evict`` CLI) for disk.
        """
        with self._lock:
            if spec is not None:
                keys = [self._key(spec, tenant)]
            elif tenant is not None:
                keys = [k for k in self._warm if k[0] == tenant]
            else:
                keys = list(self._warm)
            demoted = 0
            for key in keys:
                if key in self._warm:
                    self._evict_key(key)
                    demoted += 1
            return demoted

    def warm_specs(self, tenant: Optional[str] = None) -> List[ModelSpec]:
        """Warm-tier contents, least recently used first."""
        with self._lock:
            return [
                entry.spec
                for (entry_tenant, _), entry in self._warm.items()
                if tenant is None or entry_tenant == tenant
            ]

    def tenant_bytes(self, tenant: str) -> int:
        """Warm bytes currently charged to ``tenant``."""
        with self._lock:
            return sum(
                entry.nbytes
                for (entry_tenant, _), entry in self._warm.items()
                if entry_tenant == tenant
            )

    def stats(self) -> dict:
        """A JSON-able snapshot of tier occupancy and quotas."""
        with self._lock:
            tenants: Dict[str, dict] = {}
            for (tenant, _), entry in self._warm.items():
                bucket = tenants.setdefault(
                    tenant,
                    {
                        "entries": 0,
                        "bytes": 0,
                        "quota_bytes": self.tenant_quotas.get(tenant),
                    },
                )
                bucket["entries"] += 1
                bucket["bytes"] += entry.nbytes
            return {
                "warm": [entry.token for entry in self._warm.values()],
                "warm_max_entries": self.warm_max_entries,
                "evictable": sorted(
                    token for (_, token) in self._evictable
                ),
                "pinned": sorted(token for (_, token) in self._pins),
                "tenants": tenants,
            }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _key(
        self, spec: ModelSpec, tenant: Optional[str]
    ) -> Tuple[str, str]:
        spec = spec.resolved(self.workbench.config)
        return (tenant or self.default_tenant, spec.token())

    def _train_or_load(self, spec: ModelSpec) -> Tuple[object, dict]:
        """The workbench's train-or-load path (legacy-exact)."""
        loader = getattr(self.workbench, "_train_or_load", None)
        if loader is None:
            # Duck-typed workbench (tests, adapters): its public model()
            # is the train-or-load path.
            return self.workbench.model(spec)
        return loader(spec)

    def _present_tier(self, spec: ModelSpec) -> str:
        """``"cold"`` when the artifact is on disk, else ``"miss"``."""
        try:
            name = spec.cache_name()
        except ConfigError:
            return "miss"
        return (
            "cold"
            if layout.artifact_exists(self.workbench.config, name)
            else "miss"
        )

    def _count_lookup(self, tier: str, tenant: str) -> None:
        if tier == "miss":
            self.metrics.counter("registry.tier_miss", tenant=tenant).inc()
        else:
            self.metrics.counter(
                "registry.tier_hit", tier=tier, tenant=tenant
            ).inc()

    def _quota(self, tenant: str) -> Optional[int]:
        return self.tenant_quotas.get(tenant)

    def _admit(self, entry: WarmEntry) -> bool:
        """Install ``entry`` in the warm tier; False when quota forbids.

        Caller holds the registry lock and has verified the key is not
        already warm.
        """
        quota = self._quota(entry.tenant)
        if quota is not None and (quota <= 0 or entry.nbytes > quota):
            return False
        key = (entry.tenant, entry.token)
        self._warm[key] = entry
        self._warm.move_to_end(key)
        self._shrink(entry.tenant)
        self._update_gauges(entry.tenant)
        return key in self._warm

    def _shrink(self, tenant: str) -> None:
        """Enforce the global LRU bound and ``tenant``'s byte quota."""
        while len(self._warm) > self.warm_max_entries:
            self._evict_key(next(iter(self._warm)))
        quota = self._quota(tenant)
        if quota is None:
            return
        while self.tenant_bytes(tenant) > quota:
            victim = next(
                (key for key in self._warm if key[0] == tenant), None
            )
            if victim is None:
                break
            self._evict_key(victim)

    def _evict_key(self, key: Tuple[str, str]) -> None:
        """Demote one warm entry (to evictable when pinned, else drop)."""
        entry = self._warm.pop(key, None)
        if entry is None:
            return
        pinned = self._pins.get(key, 0) > 0
        if pinned:
            self._evictable[key] = entry
        self.metrics.counter(
            "registry.tier_evict", tier="warm", tenant=key[0]
        ).inc()
        journal_event(
            "registry.tier",
            spec=key[1],
            action="evict",
            tier="evictable" if pinned else "warm",
            tenant=key[0],
        )
        self._update_gauges(key[0])

    def _update_gauges(self, tenant: str) -> None:
        entries = sum(1 for key in self._warm if key[0] == tenant)
        self.metrics.gauge(
            "registry.warm_entries", tenant=tenant
        ).set(entries)
        self.metrics.gauge("registry.warm_bytes", tenant=tenant).set(
            self.tenant_bytes(tenant)
        )


__all__ = ["ModelRegistry", "WarmEntry", "model_nbytes"]
