"""On-disk layout of the model-artifact registry (the cold tier).

Every trained artifact lives in one flat cache directory as an atomic
pair — ``<prefix>-<cache_name>.npz`` (state dict) plus the matching
``.json`` (training metadata) — with a transient ``.ckpt.npz`` beside
it while training is in flight.  ``<prefix>`` is
``ExperimentConfig.cache_key_prefix()`` (profile, seed, data shape),
``<cache_name>`` is :meth:`repro.serve.spec.ModelSpec.cache_name` — the
content address the registry is keyed by.

This module is the **single home** for cache-directory path
construction: ``tools/registry_lint.py`` (tier-1) rejects any other
module under ``repro`` that touches ``config.cache_dir`` or spells the
default cache path, so tier bookkeeping can trust that every artifact
on disk went through these helpers — and through the crash-safe
:func:`repro.utils.atomic_write` protocol they build on.

Crashed writers leave pid-unique temporaries behind
(``<file>.tmp<pid>``).  :func:`scan_artifacts` classifies those as
*stale* only when the owning pid is gone; a temporary whose writer is
still alive is **live** and must never be deleted — removing it would
crash the writer's ``os.replace`` mid-publication, which is exactly
the torn-artifact race the registry exists to prevent.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

#: The conventional cache directory (``ExperimentConfig.cache_dir``'s
#: default).  CLI parsers take it from here so the literal path is
#: spelled exactly once outside the config dataclass.
DEFAULT_CACHE_DIR = ".cache/experiments"

#: Leftovers of a crashed worker's atomic write: real cache entries are
#: ``<name>.npz`` / ``<name>.json`` / ``<name>.ckpt.npz``; a process
#: that died mid-save leaves ``<name>.<ext>.tmp<pid>`` behind (or, from
#: builds predating the shared atomic_write helper,
#: ``<name>.tmp<pid>.<ext>``).
STALE_TMP = re.compile(r"(\.tmp(\d+)\.(npz|json)|\.(npz|json)\.tmp(\d+))$")


@dataclass(frozen=True)
class ArtifactPaths:
    """The file triple of one cold-tier artifact."""

    base: str
    state: str  # <base>.npz — the trained state dict
    meta: str  # <base>.json — training metadata
    ckpt: str  # <base>.ckpt.npz — transient per-epoch checkpoint


def artifact_base(config, name: str) -> str:
    """``<cache_dir>/<prefix>-<name>``, creating the cache directory.

    ``config`` is anything with ``cache_dir`` and
    ``cache_key_prefix()`` — normally an
    :class:`~repro.experiments.config.ExperimentConfig`.
    """
    os.makedirs(config.cache_dir, exist_ok=True)
    return os.path.join(
        config.cache_dir, f"{config.cache_key_prefix()}-{name}"
    )


def artifact_paths(config, name: str) -> ArtifactPaths:
    """The state/meta/checkpoint paths of the artifact named ``name``."""
    base = artifact_base(config, name)
    return ArtifactPaths(
        base=base,
        state=base + ".npz",
        meta=base + ".json",
        ckpt=base + ".ckpt.npz",
    )


def artifact_exists(config, name: str) -> bool:
    """Whether a complete (state + meta) artifact is on disk."""
    paths = artifact_paths(config, name)
    return os.path.exists(paths.state) and os.path.exists(paths.meta)


def scratch_cache_dir(config, label: str) -> str:
    """A namespaced scratch cache *under* the configured cache dir.

    For callers that need a second cache whose artifacts must never
    collide with the main one — e.g. the explorer's short-train
    surrogate, whose models share cache names with fully trained ones
    because :meth:`~repro.experiments.config.ExperimentConfig.
    cache_key_prefix` deliberately excludes epoch counts.  Keeping the
    derivation here (the registry's single home for cache paths) is
    what lets ``tools/registry_lint.py`` ban ad-hoc ``.cache_dir``
    arithmetic everywhere else.
    """
    if not label or os.sep in label or label in (".", ".."):
        raise ValueError(f"invalid scratch cache label {label!r}")
    return os.path.join(config.cache_dir, label)


# ----------------------------------------------------------------------
# cache-directory scans (the CLI's view; no config object required)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArtifactEntry:
    """One complete ``.npz`` entry found by :func:`scan_artifacts`."""

    name: str  # file name, e.g. quick-s77-...-fp32.npz
    path: str
    size_bytes: int


def _tmp_pid(name: str) -> Optional[int]:
    """The writer pid encoded in a temporary's file name, else None."""
    match = STALE_TMP.search(name)
    if match is None:
        return None
    pid = match.group(2) or match.group(5)
    return int(pid) if pid else None


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness check for ``pid`` (True when unsure)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


def scan_artifacts(
    cache_dir: str,
) -> Tuple[List[ArtifactEntry], List[str], List[str]]:
    """Classify a cache directory: ``(entries, stale_tmps, live_tmps)``.

    ``entries`` are complete ``.npz`` artifacts; ``stale_tmps`` are
    temporaries whose writer process is gone (safe to delete);
    ``live_tmps`` are temporaries a running writer still owns — an
    eviction in progress must leave them alone.
    """
    if not os.path.isdir(cache_dir):
        return [], [], []
    entries: List[ArtifactEntry] = []
    stale: List[str] = []
    live: List[str] = []
    for name in sorted(os.listdir(cache_dir)):
        pid = _tmp_pid(name)
        if pid is not None:
            (live if _pid_alive(pid) else stale).append(name)
            continue
        if name.endswith(".npz"):
            path = os.path.join(cache_dir, name)
            try:
                size = os.path.getsize(path)
            except OSError:
                continue  # raced with a concurrent eviction
            entries.append(
                ArtifactEntry(name=name, path=path, size_bytes=size)
            )
    return entries, stale, live


def evict_artifacts(
    cache_dir: str,
    names: Optional[List[str]] = None,
    everything: bool = False,
) -> Tuple[int, List[str]]:
    """Delete cold artifacts; returns ``(removed count, live tmps kept)``.

    ``names`` selects artifact *stems* (the file name without its
    ``.npz`` / ``.json`` suffix) or exact file names; ``everything``
    removes all complete entries.  Stale temporaries (dead writer pid)
    are always swept; **live** temporaries are never touched, so an
    eviction racing a worker mid-publication cannot tear the worker's
    atomic write.  Missing files are skipped silently — a concurrent
    eviction already won.
    """
    if not os.path.isdir(cache_dir):
        return 0, []
    wanted = set(names or ())
    removed = 0
    live_kept: List[str] = []
    for name in sorted(os.listdir(cache_dir)):
        pid = _tmp_pid(name)
        if pid is not None:
            if _pid_alive(pid):
                live_kept.append(name)
                continue
            target = True  # stale temporary: always sweep
        elif name.endswith((".npz", ".json")):
            stem = name
            for suffix in (".ckpt.npz", ".npz", ".json"):
                if stem.endswith(suffix):
                    stem = stem[: -len(suffix)]
                    break
            target = everything or name in wanted or stem in wanted
        else:
            target = False
        if not target:
            continue
        try:
            os.remove(os.path.join(cache_dir, name))
            removed += 1
        except FileNotFoundError:
            continue
        except OSError:
            continue
    return removed, live_kept


__all__ = [
    "ArtifactEntry",
    "ArtifactPaths",
    "DEFAULT_CACHE_DIR",
    "STALE_TMP",
    "artifact_base",
    "artifact_exists",
    "artifact_paths",
    "evict_artifacts",
    "scan_artifacts",
    "scratch_cache_dir",
]
