"""Multi-tenant model registry with tiered warm pools.

``repro.registry`` is the single model-acquisition API: everything
that needs a trained model — experiments, the serving engine, the
multi-process cluster, the CLI — resolves a
:class:`~repro.serve.spec.ModelSpec` through a
:class:`ModelRegistry` and gets ``(model, metadata)`` back from
whichever tier answers fastest (**warm** in-memory, **cold** on-disk,
or a fresh training run on a true miss).  ``Workbench.model(spec)``
still works but is a warn-once deprecation shim over
``workbench.registry.get(spec, fresh=True)``.

Typical use::

    from repro.registry import ModelRegistry

    registry = bench.registry                 # the workbench's registry
    model, meta = registry.get(spec)          # warm-tier (serving)
    model, meta = registry.get(spec, fresh=True)  # private copy (experiments)

or, process-wide::

    import repro.registry as registry

    registry.configure(bench, warm_max_entries=4)
    model, meta = registry.get(spec)

See ``docs/registry.md`` for tiers, quotas and background warm-up
semantics; the ``registry`` CLI subcommand
(``python -m repro.experiments registry list|evict|warm|stats``)
manages the cold tier on disk.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import ConfigError
from repro.registry.layout import (
    DEFAULT_CACHE_DIR,
    artifact_base,
    artifact_exists,
    artifact_paths,
    evict_artifacts,
    scan_artifacts,
    scratch_cache_dir,
)
from repro.registry.core import ModelRegistry, WarmEntry, model_nbytes
from repro.serve.spec import ModelSpec

#: The process-default registry installed by :func:`configure`.
_DEFAULT: Optional[ModelRegistry] = None


def configure(workbench, **options) -> ModelRegistry:
    """Install (and return) the process-default :class:`ModelRegistry`.

    ``options`` are forwarded to the :class:`ModelRegistry`
    constructor.  Re-configuring replaces the default; the previous
    registry keeps working for callers that hold a reference.
    """
    global _DEFAULT
    _DEFAULT = ModelRegistry(workbench, **options)
    return _DEFAULT


def current_registry() -> Optional[ModelRegistry]:
    """The process-default registry, or None before :func:`configure`."""
    return _DEFAULT


def get(
    spec: ModelSpec,
    *,
    tenant: Optional[str] = None,
    fresh: bool = False,
) -> Tuple[object, dict]:
    """``(model, metadata)`` from the process-default registry.

    The module-level convenience over
    :meth:`ModelRegistry.get`; requires a prior :func:`configure`.
    """
    if _DEFAULT is None:
        raise ConfigError(
            "no default model registry; call repro.registry.configure("
            "workbench) first, or use workbench.registry.get(spec)"
        )
    return _DEFAULT.get(spec, tenant=tenant, fresh=fresh)


__all__ = [
    "DEFAULT_CACHE_DIR",
    "ModelRegistry",
    "WarmEntry",
    "artifact_base",
    "artifact_exists",
    "artifact_paths",
    "configure",
    "current_registry",
    "evict_artifacts",
    "get",
    "model_nbytes",
    "scan_artifacts",
    "scratch_cache_dir",
]
