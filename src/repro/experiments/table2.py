"""Table 2: selective freezing during AMS retraining.

Paper rows (ENOB = 10, Nmult = 8; loss relative to the 8b quantized
network):

    None        0.0353
    Conv        0.0341    (freezing conv barely matters)
    BN          0.0886    (freezing batch norm destroys the recovery)
    FC          0.0774
    BN and FC   0.120

"These results show that the batch norm layers are primarily
responsible for the network's ability to recover a fraction of the lost
accuracy when retrained with AMS error injection in the loop."

The reproduction retrains with the same freeze groups at the config's
``table2_enob`` and checks the ordering: None ~= Conv << BN, FC, BN+FC.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Workbench
from repro.parallel import Artifact, SweepPoint, sweep_map
from repro.serve.spec import ModelSpec

EXPERIMENT_ID = "table2"
TITLE = "Table 2: selective freezing during AMS retraining (loss re: 8b)"

FREEZE_ROWS = (
    ("None", ()),
    ("Conv", ("conv",)),
    ("BN", ("bn",)),
    ("FC", ("fc",)),
    ("BN and FC", ("bn", "fc")),
)

ARTIFACTS = {
    "fp32": Artifact(
        "fp32", lambda b: b.registry.get(ModelSpec("fp32"), fresh=True)
    ),
    "quant-8-8": Artifact(
        "quant-8-8",
        lambda b: b.registry.get(ModelSpec("quant", bw=8, bx=8), fresh=True),
        deps=("fp32",),
    ),
}


def _point(bench: Workbench, freeze):
    """One freeze-group row: retrain with ``freeze`` and evaluate."""
    model, _ = bench.registry.get(
        ModelSpec(
            "ams", enob=bench.config.table2_enob, freeze=tuple(freeze)
        ),
        fresh=True,
    )
    return bench.stats(model)


def run(bench: Workbench) -> ExperimentResult:
    cfg = bench.config
    base_model, _ = bench.registry.get(
        ModelSpec("quant", bw=8, bx=8), fresh=True
    )
    base = bench.stats(base_model)

    points = [
        SweepPoint(key=label, args=(freeze,), requires=("quant-8-8",))
        for label, freeze in FREEZE_ROWS
    ]
    results = sweep_map(bench, _point, points, ARTIFACTS)

    rows = []
    losses = {}
    for (label, _freeze), stats in zip(FREEZE_ROWS, results):
        loss = base.mean - stats.mean
        losses[label] = loss
        rows.append([label, loss, stats.std])

    bn_mechanism_ok = (
        losses["BN"] > losses["None"]
        and losses["FC"] > losses["None"]
        and losses["BN and FC"] > losses["None"]
    )
    notes = [
        f"ENOB={cfg.table2_enob}, Nmult={cfg.nmult}; "
        f"8b baseline {base.mean:.4f} +/- {base.std:.2e}",
        "paper shape: freezing BN (and FC) forfeits the recovery",
        f"BN mechanism {'HOLDS' if bn_mechanism_ok else 'VIOLATED'}: "
        + ", ".join(f"{k}={v:.4f}" for k, v in losses.items()),
        "known scale divergence (see EXPERIMENTS.md): the paper's "
        "'freezing Conv is harmless' does not transfer — our 78k-param "
        "convs can adapt to noise during retraining, unlike ResNet-50's "
        "25M inert weights under a 0.004 fine-tune LR, so the Conv row "
        "hurts here",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["Frozen Layers", "Top-1 Accuracy Loss re: 8b", "Samp. Std. Dev."],
        rows=rows,
        notes=notes,
        extras={"losses": losses, "enob": cfg.table2_enob},
    )
