"""Figure 4: accuracy loss vs ENOB_VMAC relative to the 8b quantized net.

Paper series (Nmult = 8):

- "AMS error in eval only": the retrained 8b network evaluated with
  injected AMS error;
- "AMS error in eval and retraining": the network retrained with the
  error in the loop (last layer error-free during training).

Paper shape claims reproduced here:

1. for low ENOB, retraining recovers up to ~half the accuracy lost;
2. for high ENOB, retraining is neutral-to-slightly-harmful;
3. loss shrinks monotonically (in trend) as ENOB grows, reaching the
   quantized baseline within one sample std at the top of the sweep.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Workbench
from repro.parallel import Artifact, SweepPoint, sweep_map
from repro.serve.spec import ModelSpec

EXPERIMENT_ID = "fig4"
TITLE = "Fig. 4: top-1 accuracy loss vs ENOB (re: 8b quantized, Nmult=8)"

#: Shared trained models every grid point leans on; built serially in
#: the parent so sweep workers find a warm disk cache.
ARTIFACTS = {
    "fp32": Artifact(
        "fp32", lambda b: b.registry.get(ModelSpec("fp32"), fresh=True)
    ),
    "quant-8-8": Artifact(
        "quant-8-8",
        lambda b: b.registry.get(ModelSpec("quant", bw=8, bx=8), fresh=True),
        deps=("fp32",),
    ),
}


def _point(bench: Workbench, enob: float):
    """One ENOB grid point: eval-only and retrained statistics."""
    eval_only, _ = bench.registry.get(
        ModelSpec("ams_eval", enob=enob), fresh=True
    )
    eval_stats = bench.stats(eval_only)
    retrained, _ = bench.registry.get(ModelSpec("ams", enob=enob), fresh=True)
    retrain_stats = bench.stats(retrained)
    return eval_stats, retrain_stats


def run(bench: Workbench) -> ExperimentResult:
    cfg = bench.config
    base_model, _ = bench.registry.get(
        ModelSpec("quant", bw=8, bx=8), fresh=True
    )
    base = bench.stats(base_model)

    points = [
        SweepPoint(key=enob, args=(enob,), requires=("quant-8-8",))
        for enob in cfg.enob_sweep
    ]
    results = sweep_map(bench, _point, points, ARTIFACTS)

    rows = []
    eval_losses = {}
    retrain_losses = {}
    for enob, (eval_stats, retrain_stats) in zip(cfg.enob_sweep, results):
        loss_eval = base.mean - eval_stats.mean
        loss_retrain = base.mean - retrain_stats.mean
        eval_losses[enob] = loss_eval
        retrain_losses[enob] = loss_retrain
        rows.append(
            [
                enob,
                loss_eval,
                eval_stats.std,
                loss_retrain,
                retrain_stats.std,
                loss_eval - loss_retrain,
            ]
        )

    recovery = [
        eval_losses[e] - retrain_losses[e]
        for e in cfg.enob_sweep
        if eval_losses[e] > 2 * base.std
    ]
    notes = [
        f"8b quantized baseline: {base.mean:.4f} +/- {base.std:.2e}",
        "paper shape: retraining recovers accuracy at low ENOB "
        "(positive recovery column), neutral at high ENOB",
        (
            "retraining recovery at noisy ENOBs: "
            + ", ".join(f"{r:+.4f}" for r in recovery)
            if recovery
            else "no ENOB in sweep produced loss above noise floor"
        ),
    ]
    from repro.utils.ascii_plot import ascii_chart

    chart = ascii_chart(
        list(cfg.enob_sweep),
        {
            "eval only": [eval_losses[e] for e in cfg.enob_sweep],
            "retrained": [retrain_losses[e] for e in cfg.enob_sweep],
        },
        x_label="ENOB_VMAC",
        y_label="top-1 accuracy loss re: 8b quantized",
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "ENOB_VMAC",
            "Loss (eval only)",
            "Std",
            "Loss (retrained)",
            "Std",
            "Recovery",
        ],
        rows=rows,
        notes=notes,
        extras={
            "baseline_mean": base.mean,
            "baseline_std": base.std,
            "eval_losses": {str(k): v for k, v in eval_losses.items()},
            "retrain_losses": {str(k): v for k, v in retrain_losses.items()},
            "nmult": cfg.nmult,
        },
        charts=[chart],
    )
