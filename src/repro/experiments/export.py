"""Export experiment result records to CSV for external plotting.

``results/<id>.json`` holds everything; this module flattens each
record's rows into ``<id>.csv`` so the figures can be replotted with
any tool without parsing JSON.
"""

from __future__ import annotations

import csv
import json
import os
from typing import List

from repro.errors import ConfigError


def export_result_csv(json_path: str, out_dir: str) -> str:
    """Convert one ``results/<id>.json`` into ``<out_dir>/<id>.csv``."""
    if not os.path.exists(json_path):
        raise ConfigError(f"no result file at {json_path}")
    with open(json_path) as fh:
        record = json.load(fh)
    os.makedirs(out_dir, exist_ok=True)
    experiment_id = record["experiment_id"]
    out_path = os.path.join(out_dir, f"{experiment_id}.csv")
    with open(out_path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(record["headers"])
        writer.writerows(record["rows"])
    return out_path


def export_all(results_dir: str, out_dir: str) -> List[str]:
    """Export every JSON record in ``results_dir``; returns CSV paths."""
    if not os.path.isdir(results_dir):
        raise ConfigError(f"no results directory at {results_dir}")
    paths = []
    for name in sorted(os.listdir(results_dir)):
        if name.endswith(".json"):
            paths.append(
                export_result_csv(os.path.join(results_dir, name), out_dir)
            )
    if not paths:
        raise ConfigError(f"no result records in {results_dir}")
    return paths
