"""Experiment registry: id -> module."""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigError
from repro.experiments import (
    ablations,
    alloc,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    freelunch,
    pvt,
    table1,
    table2,
)
from repro.experiments.common import ExperimentResult, Workbench

EXPERIMENTS: Dict[str, object] = {
    module.EXPERIMENT_ID: module
    for module in (
        table1, fig4, fig5, table2, fig6, fig7, fig8, ablations, freelunch,
        alloc, pvt,
    )
}

#: Suggested execution order (later experiments reuse earlier caches).
DEFAULT_ORDER: List[str] = [
    "table1",
    "fig4",
    "fig5",
    "table2",
    "fig6",
    "fig7",
    "fig8",
    "ablations",
    "freelunch",
    "alloc",
    "pvt",
]


def get_experiment(experiment_id: str):
    """The module implementing ``experiment_id``."""
    if experiment_id not in EXPERIMENTS:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id]


def run_experiment(experiment_id: str, bench: Workbench) -> ExperimentResult:
    """Run one experiment on a workbench."""
    return get_experiment(experiment_id).run(bench)
