"""Experiment configuration and profiles.

Two profiles trade fidelity for wall clock:

- ``full``: the default; every experiment's headline numbers in
  EXPERIMENTS.md come from this profile (minutes of numpy training).
- ``quick``: small dataset and few epochs, used by the benchmark suite
  and smoke tests (seconds).
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, fields, replace
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything an experiment needs to be reproducible.

    Attributes
    ----------
    profile:
        ``"full"`` or ``"quick"``.
    seed:
        Master seed; data generation, weight init, noise and shuffling
        derive from it deterministically.
    train_per_class, val_per_class, num_classes, image_size:
        SynthImageNet shape.
    pretrain_epochs, retrain_epochs:
        FP32 pretraining vs hardware-aware retraining budgets.
    batch_size, lr, retrain_lr:
        Optimization; retraining uses a lower constant LR, mirroring
        the paper's fine-tuning recipe (lr 0.004 at batch 1024).
    eval_passes:
        Validation passes per reported accuracy (paper: 5).
    nmult:
        VMAC width for all accuracy experiments (paper: 8).
    enob_sweep:
        ENOB values for Figs. 4-5.  (The paper sweeps 9-13 for
        ResNet-50; our smaller Ntot shifts the interesting range down,
        see DESIGN.md.)
    table2_enob:
        Fixed ENOB for the selective-freezing study.  The paper uses 10
        (a moderate-noise point on its scale); 5.5 is the matching
        regime here (eval-only loss of a few percent).
    fig6_enobs:
        AMS noise levels for the activation-mean analysis (paper: 9-12).
    error_model:
        Default AMS error model for specs that do not name one
        (``None`` = the paper's ``"lumped_gaussian"``).  Validated
        against the :mod:`repro.ams.models` registry fail-fast, with a
        did-you-mean on unknown names.
    error_model_params:
        Parameters for ``error_model``; accepts a mapping, stored as a
        sorted tuple of ``(key, value)`` pairs.
    cache_dir, results_dir:
        Artifact locations.
    """

    profile: str = "full"
    seed: int = 1234
    # data
    num_classes: int = 20
    image_size: int = 16
    train_per_class: int = 150
    val_per_class: int = 40
    distractor_mix: float = 0.5
    noise_std: float = 0.7
    # training
    pretrain_epochs: int = 15
    retrain_epochs: int = 10
    batch_size: int = 128
    lr: float = 0.05
    retrain_lr: float = 0.02
    patience: int = 4
    eval_passes: int = 5
    # AMS sweep
    nmult: int = 8
    enob_sweep: Tuple[float, ...] = (4.0, 4.5, 5.0, 5.5, 6.0, 6.5, 7.0, 8.0)
    table2_enob: float = 5.5
    fig6_enobs: Tuple[float, ...] = (4.5, 5.0, 5.5, 6.0)
    error_model: Optional[str] = None
    error_model_params: Tuple[Tuple[str, object], ...] = ()
    # io
    cache_dir: str = ".cache/experiments"
    results_dir: str = "results"

    def __post_init__(self):
        if self.profile not in ("full", "quick"):
            raise ConfigError(
                f"unknown profile {self.profile!r}; options: ['full', 'quick']"
            )
        if self.eval_passes < 1:
            raise ConfigError("eval_passes must be >= 1")
        params = self.error_model_params
        items = params.items() if hasattr(params, "items") else params
        canonical = tuple(
            sorted((str(key), value) for key, value in items)
        )
        object.__setattr__(self, "error_model_params", canonical)
        if self.error_model_params and self.error_model is None:
            raise ConfigError(
                "error_model_params requires an explicit error_model"
            )
        if self.error_model is not None:
            from repro.ams.models import get_model

            get_model(self.error_model, dict(self.error_model_params))

    def cache_key_prefix(self) -> str:
        """Stable prefix identifying the (profile, seed, data) regime."""
        return (
            f"{self.profile}-s{self.seed}-c{self.num_classes}"
            f"-i{self.image_size}-t{self.train_per_class}"
        )


def _quick(base: ExperimentConfig) -> ExperimentConfig:
    return replace(
        base,
        profile="quick",
        num_classes=10,
        train_per_class=60,
        val_per_class=25,
        pretrain_epochs=4,
        retrain_epochs=3,
        batch_size=64,
        patience=2,
        eval_passes=3,
        enob_sweep=(4.0, 5.0, 6.0, 8.0),
        table2_enob=5.0,
        fig6_enobs=(5.0, 6.0),
    )


PROFILES: Dict[str, ExperimentConfig] = {
    "full": ExperimentConfig(),
    "quick": _quick(ExperimentConfig()),
}


def make_config(profile: str = "full", seed: int = 1234, **overrides) -> ExperimentConfig:
    """Config for a profile with optional field overrides.

    Override names are validated up front: an unknown key raises
    :class:`~repro.errors.ConfigError` listing the valid fields (and a
    did-you-mean suggestion) instead of surfacing as a bare
    ``TypeError`` from ``dataclasses.replace``.
    """
    if profile not in PROFILES:
        raise ConfigError(
            f"unknown profile {profile!r}; options: {sorted(PROFILES)}"
        )
    valid = sorted(f.name for f in fields(ExperimentConfig))
    unknown = sorted(set(overrides) - set(valid))
    if unknown:
        hints = []
        for name in unknown:
            close = difflib.get_close_matches(name, valid, n=1)
            hints.append(
                f"{name!r}" + (f" (did you mean {close[0]!r}?)" if close else "")
            )
        raise ConfigError(
            f"unknown config override{'s' if len(unknown) > 1 else ''} "
            f"{', '.join(hints)}; valid fields: {valid}"
        )
    return replace(PROFILES[profile], seed=seed, **overrides)
