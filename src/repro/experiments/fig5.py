"""Figure 5: accuracy loss vs ENOB relative to the 6b quantized net.

Paper setting: Nmult = 8, AMS error at evaluation time only ("based on
the results shown in Figure 4, for this precision we only investigated
adding AMS error at evaluation time"), using the best epoch of the
quantized retrained network.  The paper finds ENOB = 11 is the cutoff
for < 1% top-1 loss and ENOB = 12.5 reaches within one sample std.

The reproduction reports the same two cutoffs for our ENOB scale.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Workbench
from repro.parallel import Artifact, SweepPoint, sweep_map
from repro.serve.spec import ModelSpec

EXPERIMENT_ID = "fig5"
TITLE = "Fig. 5: top-1 accuracy loss vs ENOB (re: 6b quantized, eval only)"

ARTIFACTS = {
    "fp32": Artifact(
        "fp32", lambda b: b.registry.get(ModelSpec("fp32"), fresh=True)
    ),
    "quant-6-6": Artifact(
        "quant-6-6",
        lambda b: b.registry.get(ModelSpec("quant", bw=6, bx=6), fresh=True),
        deps=("fp32",),
    ),
}


def _point(bench: Workbench, enob: float):
    """One eval-only grid point at 6b precision."""
    model, _ = bench.registry.get(
        ModelSpec("ams_eval", enob=enob, bw=6, bx=6), fresh=True
    )
    return bench.stats(model)


def run(bench: Workbench) -> ExperimentResult:
    cfg = bench.config
    base_model, _ = bench.registry.get(
        ModelSpec("quant", bw=6, bx=6), fresh=True
    )
    base = bench.stats(base_model)

    points = [
        SweepPoint(key=enob, args=(enob,), requires=("quant-6-6",))
        for enob in cfg.enob_sweep
    ]
    results = sweep_map(bench, _point, points, ARTIFACTS)

    rows = []
    losses = {}
    for enob, stats in zip(cfg.enob_sweep, results):
        loss = base.mean - stats.mean
        losses[enob] = (loss, stats.std)
        rows.append([enob, loss, stats.std])

    cutoff_1pct = _first_enob(losses, lambda l, s: l < 0.01)
    cutoff_std = _first_enob(losses, lambda l, s: l <= max(base.std, s))
    notes = [
        f"6b quantized baseline: {base.mean:.4f} +/- {base.std:.2e}",
        f"cutoff for <1% loss: ENOB {cutoff_1pct} (paper: 11 on its scale)",
        f"cutoff for within-1-std: ENOB {cutoff_std} (paper: 12.5 on its scale)",
    ]
    from repro.utils.ascii_plot import ascii_chart

    chart = ascii_chart(
        list(cfg.enob_sweep),
        {"AMS error in eval only": [losses[e][0] for e in cfg.enob_sweep]},
        x_label="ENOB_VMAC",
        y_label="top-1 accuracy loss re: 6b quantized",
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["ENOB_VMAC", "Loss (eval only)", "Std"],
        rows=rows,
        notes=notes,
        extras={
            "baseline_mean": base.mean,
            "baseline_std": base.std,
            "cutoff_1pct": cutoff_1pct,
            "cutoff_within_std": cutoff_std,
        },
        charts=[chart],
    )


def _first_enob(losses: dict, predicate) -> object:
    for enob in sorted(losses):
        loss, std = losses[enob]
        if predicate(loss, std):
            return enob
    return "not reached"
