"""Training-free accuracy recovery ("free lunch", paper Section 4).

"The most pressing need is for a network-level method that minimizes
the accuracy loss when AMS error is introduced; this would require no
hardware-level tradeoffs in order to implement, and basically
represents a 'free lunch.'"

This experiment evaluates the two candidates the repo implements,
against the eval-only and retrained references of Fig. 4:

- **BN recalibration** (:func:`repro.train.recalibrate_batchnorm`):
  refresh batch-norm running statistics under injected noise; forward
  passes only, no training.
- **Multi-sample averaging** (:func:`repro.train.ensemble_evaluate`):
  average class probabilities over k noisy passes; worth
  ``0.5*log2(k)`` effective ENOB bits at k-fold computation energy (so
  not strictly free — it spends energy instead of hardware).
- Their composition.

The paper also estimates its retraining method is worth ~0.5 bit
(~2x energy); the table reports each method's equivalent bits for
direct comparison.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Workbench
from repro.serve.spec import ModelSpec
from repro.train.ensemble import effective_enob, ensemble_evaluate
from repro.train.recalibrate import recalibrate_batchnorm

EXPERIMENT_ID = "freelunch"
TITLE = "Free lunch: training-free recovery at fixed hardware (re: 8b)"

ENSEMBLE_SIZES = (2, 4, 8)


def run(bench: Workbench) -> ExperimentResult:
    cfg = bench.config
    enob = cfg.table2_enob
    base_model, _ = bench.registry.get(
        ModelSpec("quant", bw=8, bx=8), fresh=True
    )
    base = bench.stats(base_model)

    rows = []
    losses = {}

    def record(label, accuracy, cost, bits):
        loss = base.mean - accuracy
        losses[label] = loss
        rows.append([label, loss, cost, bits])

    # Reference 1: plain eval-only (the damage to fix).
    eval_model, _ = bench.registry.get(
        ModelSpec("ams_eval", enob=enob), fresh=True
    )
    record("eval only", bench.stats(eval_model).mean, "1x energy", "+0.0b")

    # Method 1: BN recalibration (forward passes only).
    recal_model, _ = bench.registry.get(
        ModelSpec("ams_eval", enob=enob), fresh=True
    )
    recalibrate_batchnorm(
        recal_model, bench.data.train, batch_size=cfg.batch_size
    )
    record(
        "BN recalibration",
        bench.stats(recal_model).mean,
        "one calib sweep",
        "n/a",
    )

    # Method 2: multi-sample averaging at several k.
    for k in ENSEMBLE_SIZES:
        accuracy = ensemble_evaluate(
            eval_model, bench.data.val, samples=k, batch_size=cfg.batch_size
        )
        gained = effective_enob(enob, k) - enob
        record(
            f"ensemble k={k}",
            accuracy,
            f"{k}x energy",
            f"+{gained:.2f}b",
        )

    # Method 3: composition.
    accuracy = ensemble_evaluate(
        recal_model, bench.data.val, samples=4, batch_size=cfg.batch_size
    )
    record(
        "recalibration + ensemble k=4",
        accuracy,
        "4x energy + calib",
        f"+{effective_enob(enob, 4) - enob:.2f}b",
    )

    # Reference 2: full retraining with error in the loop (Fig. 4).
    retrained, _ = bench.registry.get(ModelSpec("ams", enob=enob), fresh=True)
    record(
        "retrained (paper's method)",
        bench.stats(retrained).mean,
        "full retraining",
        "~+0.5b (paper est.)",
    )

    recovered = losses["eval only"] - losses["BN recalibration"]
    notes = [
        f"fixed hardware: ENOB={enob}, Nmult={cfg.nmult}; "
        f"8b baseline {base.mean:.4f}",
        f"BN recalibration recovers {recovered:+.4f} of the eval-only "
        "loss with zero training",
        "ensemble averaging buys 0.5*log2(k) effective bits at k-fold "
        "energy — a runtime point on the Fig. 8 tradeoff",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["Method", "Top-1 loss re: 8b", "Cost", "Equivalent bits"],
        rows=rows,
        notes=notes,
        extras={"losses": losses, "enob": enob},
    )
