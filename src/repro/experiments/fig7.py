"""Figure 7: the ADC survey and the Eq. 3 energy bound.

The paper adapts Murmann's ADC survey (1997-2018) and draws (a) the
scatter of published converters (energy per Nyquist sample vs ENOB at
high input frequency), (b) a slightly shifted Schreier-FOM line, and
(c) a constant-energy line — together justifying the two-branch bound
of Eq. 3 (flat 0.3 pJ below ENOB 10.5, x4 per bit above).

The reproduction generates the synthetic survey (DESIGN.md substitution)
and verifies every property Fig. 7 is used for:

1. no published point beats the bound;
2. the bound is flat below the knee;
3. above the knee the bound's slope is 6.02 dB/bit (x4 energy per bit);
4. the two branches meet continuously at the knee.
"""

from __future__ import annotations

from repro.energy.adc import (
    FLAT_ENERGY_PJ,
    THERMAL_KNEE_ENOB,
    adc_energy,
    schreier_fom,
)
from repro.energy.survey import SyntheticADCSurvey
from repro.experiments.common import ExperimentResult, Workbench

EXPERIMENT_ID = "fig7"
TITLE = "Fig. 7: ADC survey scatter vs the Eq. 3 energy bound"


def run(bench: Workbench) -> ExperimentResult:
    survey = SyntheticADCSurvey(seed=bench.config.seed)
    violations = survey.violations()

    rows = []
    for enob in (4, 6, 8, 10, 10.5, 11, 12, 13, 14, 16):
        bound = adc_energy(enob)
        near = [
            p.energy_pj
            for p in survey.points
            if abs(p.enob - enob) < 0.5
        ]
        rows.append(
            [
                enob,
                bound,
                min(near) if near else float("nan"),
                len(near),
                schreier_fom(bound, enob),
            ]
        )

    knee_left = adc_energy(THERMAL_KNEE_ENOB)
    knee_right = adc_energy(THERMAL_KNEE_ENOB + 1e-9)
    quadruple = adc_energy(13.0) / adc_energy(12.0)
    notes = [
        f"survey points: {len(survey)}; bound violations: {len(violations)} "
        "(must be 0)",
        f"flat branch: {FLAT_ENERGY_PJ} pJ up to ENOB {THERMAL_KNEE_ENOB}; "
        f"branch continuity at knee: {knee_left:.4f} vs {knee_right:.4f} pJ",
        f"thermal branch energy ratio per extra bit: {quadruple:.3f} "
        "(paper: ~4x, the Schreier-FOM slope)",
        f"best synthetic-survey Schreier FOM: {survey.best_fom_db():.1f} dB "
        "(paper line: 187 dB)",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "ENOB",
            "Bound E_ADC [pJ]",
            "Best survey pt [pJ]",
            "#pts near",
            "FOM_S of bound [dB]",
        ],
        rows=rows,
        notes=notes,
        extras={
            "num_points": len(survey),
            "num_violations": len(violations),
            "energy_ratio_per_bit": quadruple,
            "best_fom_db": survey.best_fom_db(),
        },
    )
