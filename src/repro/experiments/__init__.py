"""Experiment harness: one module per paper table/figure.

Run from the command line::

    python -m repro.experiments list
    python -m repro.experiments run table1
    python -m repro.experiments run fig4 --profile quick
    python -m repro.experiments all --profile quick

Each experiment prints the same rows/series the paper reports and writes
a JSON record under ``results/``.  Shared artifacts (the pretrained FP32
baseline, retrained quantized baselines, retrained AMS models) are
cached under ``.cache/`` keyed by profile and seed, so experiments reuse
each other's training runs exactly as the paper's runs share baselines.
"""

from repro.experiments.config import ExperimentConfig, PROFILES
from repro.experiments.common import Workbench
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = [
    "ExperimentConfig",
    "PROFILES",
    "Workbench",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
]
