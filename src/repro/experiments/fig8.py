"""Figure 8: the (ENOB, Nmult) accuracy/energy lookup table.

The paper overlays, on a grid of (ENOB_VMAC, Nmult):

- top-1 accuracy loss relative to the 8b quantized network (measured at
  Nmult = 8 and mapped to other Nmult through the Eq. 2 equivalence);
- minimum energy per MAC (Eqs. 3-4) level curves
  (~78 / 157 / 313 / 626 / 1250 fJ/MAC in the paper).

The headline conclusion: in the thermal-noise-limited region the two
families of level curves are parallel, so accuracy loss and E_MAC,min
are in one-to-one correspondence; the paper reads off E_MAC,min ~313 fJ
for < 0.4% loss and ~78 fJ for < 1%.

The reproduction builds the grid from our measured Fig. 4 retrained
curve, verifies level-curve parallelism numerically, and reports the
minimum-energy numbers for our own loss targets.
"""

from __future__ import annotations

import numpy as np

from repro.energy.emac import EnergyModel
from repro.energy.tradeoff import AccuracyCurve, TradeoffGrid
from repro.errors import ConfigError
from repro.experiments import fig4
from repro.experiments.common import ExperimentResult, Workbench

EXPERIMENT_ID = "fig8"
TITLE = "Fig. 8: accuracy loss and E_MAC over the (ENOB, Nmult) grid"

#: Nmult rows of the grid (paper's Fig. 8 uses powers of two).
NMULTS = (2, 4, 8, 16, 32, 64)


def build_curve(bench: Workbench) -> AccuracyCurve:
    """Measured loss-vs-ENOB curve (retrained series of Fig. 4)."""
    result = fig4.run(bench)
    losses = result.extras["retrain_losses"]
    enobs = sorted(float(e) for e in losses)
    return AccuracyCurve(
        enobs=np.array(enobs),
        losses=np.array([max(losses[_key(losses, e)], 0.0) for e in enobs]),
        reference_nmult=bench.config.nmult,
    )


def _key(mapping: dict, enob: float) -> str:
    for key in mapping:
        if abs(float(key) - enob) < 1e-9:
            return key
    raise ConfigError(f"missing ENOB {enob} in fig4 results")


def run(bench: Workbench) -> ExperimentResult:
    curve = build_curve(bench)
    grid = TradeoffGrid(curve, EnergyModel())

    enobs = [float(e) for e in bench.config.enob_sweep]
    rows = []
    for nmult in NMULTS:
        cells = [grid.cell(e, nmult) for e in enobs]
        rows.append(
            [nmult]
            + [f"{c.loss*100:.2f}% / {c.emac_pj*1000:.0f}fJ" for c in cells]
        )

    # Loss targets scaled to our measured range (the paper uses 0.4%/1%).
    targets = _loss_targets(curve)
    target_rows = []
    for target in targets:
        emac_pj, cell = grid.min_emac_for_loss(
            target, nmult_candidates=NMULTS
        )
        spread = grid.level_curve_parallelism(target, NMULTS)
        target_rows.append((target, emac_pj, cell.enob, cell.nmult, spread))

    # Projection to the paper's scale: our smaller Ntot shifts the
    # required ENOB down (Eq. 2), landing the whole sweep below the ADC
    # knee where Eq. 3 is flat and amortization is free.  Shifting the
    # measured curve so its <1% cutoff coincides with the paper's
    # (ENOB 11 at Nmult 8) prices the same curve *shape* on
    # thermal-noise-limited hardware — the regime of the paper's
    # headline numbers.
    projection = _resnet50_projection(curve)

    notes = [
        "cell format: accuracy loss / E_MAC; loss mapped from Nmult=8 "
        "measurements via Eq. 2 equivalence",
        "paper headline: <0.4% loss needs ~313 fJ/MAC; <1% needs ~78 fJ/MAC "
        "(ResNet-50/ImageNet scale)",
    ]
    for target, emac_pj, enob, nmult, spread in target_rows:
        notes.append(
            f"at our scale: <{target*100:.1f}% loss needs >= "
            f"{emac_pj*1000:.0f} fJ/MAC (ENOB {enob:.2f} @ Nmult {nmult}) — "
            "below the ADC knee, where the flat Eq. 3 floor makes "
            "amortization nearly free"
        )
    if projection is not None:
        notes.append(
            "projected to ResNet-50 scale (curve shifted so the <1% "
            f"cutoff sits at ENOB 11): <1% loss needs >= "
            f"{projection['emac_1pct_fj']:.0f} fJ/MAC (paper: ~78); "
            f"tightest reachable target {projection['tight_target']*100:.2f}% "
            f"needs >= {projection['emac_tight_fj']:.0f} fJ/MAC; "
            f"thermal-region iso-loss E_MAC spread "
            f"{projection['parallel_spread']*100:.2f}% (parallel level curves)"
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["Nmult \\ ENOB"] + [str(e) for e in enobs],
        rows=rows,
        notes=notes,
        extras={
            "targets": [
                {
                    "loss": t,
                    "emac_pj": e,
                    "enob": en,
                    "nmult": nm,
                    "parallel_spread": sp,
                }
                for t, e, en, nm, sp in target_rows
            ],
            "curve_enobs": curve.enobs.tolist(),
            "curve_losses": curve.losses.tolist(),
            "projection": projection,
        },
    )


def _resnet50_projection(curve: AccuracyCurve) -> dict:
    """Price the measured curve shape on paper-scale (thermal) hardware.

    Shifts the curve so its <1% cutoff lands at the paper's ENOB 11
    (Nmult 8) and recomputes the Fig. 8 quantities; returns None when
    the curve never reaches 1% loss.
    """
    try:
        our_cutoff = curve.required_enob(0.01)
    except Exception:
        return None
    shift = 11.0 - our_cutoff
    shifted = AccuracyCurve(
        enobs=curve.enobs + shift,
        losses=curve.losses.copy(),
        reference_nmult=curve.reference_nmult,
    )
    grid = TradeoffGrid(shifted, EnergyModel())
    emac_1pct, _ = grid.min_emac_for_loss(0.01, nmult_candidates=NMULTS)
    tight_target = max(float(shifted.losses[-1]), 1e-4)
    emac_tight, _ = grid.min_emac_for_loss(
        tight_target, nmult_candidates=NMULTS
    )
    spread = grid.level_curve_parallelism(0.01, NMULTS)
    return {
        "enob_shift": shift,
        "emac_1pct_fj": emac_1pct * 1000,
        "tight_target": tight_target,
        "emac_tight_fj": emac_tight * 1000,
        "parallel_spread": spread,
    }


def _loss_targets(curve: AccuracyCurve) -> list:
    """Paper-style targets clipped to what our curve can reach."""
    reachable = curve.losses[-1]
    candidates = [0.004, 0.01, 0.02, 0.05]
    targets = [t for t in candidates if t >= reachable]
    if not targets:
        targets = [max(reachable * 2, 1e-4)]
    return targets[:3]
