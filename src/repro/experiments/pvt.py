"""Static per-device errors: mismatch/PVT population study.

The paper defers "non-additive and data-dependent errors (due to, for
example, capacitor or resistor mismatch)" and PVT variation to future
work, while noting the framework accepts such models directly.  This
experiment plugs the simplest static-error model in
(:mod:`repro.ams.static_errors`) and answers the questions a silicon
team asks:

1. How much accuracy does channel-to-channel gain/offset mismatch cost
   across a population of simulated chips (mean and worst device)?
2. How much of that is recovered *per device* by batch-norm statistics
   recalibration — static errors are stable, so BN can absorb them,
   unlike the dynamic noise of the main experiments?
"""

from __future__ import annotations

import numpy as np

from repro.ams.static_errors import DeviceVariation, apply_device_variation
from repro.experiments.common import ExperimentResult, Workbench
from repro.serve.spec import ModelSpec
from repro.train.evaluate import evaluate_accuracy
from repro.train.recalibrate import recalibrate_batchnorm

EXPERIMENT_ID = "pvt"
TITLE = "Static mismatch across simulated devices (gain/offset errors)"

#: (label, gain std, offset std) sweeps.
VARIATIONS = (
    ("2% gain", 0.02, 0.0),
    ("5% gain", 0.05, 0.0),
    ("10% gain", 0.10, 0.0),
    ("5% gain + offset", 0.05, 0.05),
)

DEVICES = 5


def run(bench: Workbench) -> ExperimentResult:
    cfg = bench.config
    quant, _ = bench.registry.get(ModelSpec("quant", bw=8, bx=8), fresh=True)
    baseline = evaluate_accuracy(quant, bench.data.val, cfg.batch_size)

    rows = []
    extras = {"baseline": baseline, "populations": {}}
    for label, gain_std, offset_std in VARIATIONS:
        raw_accs = []
        recal_accs = []
        seq = np.random.SeedSequence(cfg.seed + 31)
        for child in seq.spawn(DEVICES):
            chip_seed = int(child.generate_state(1)[0])
            chip = DeviceVariation(
                gain_std=gain_std, offset_std=offset_std, seed=chip_seed
            )
            model = bench.build(ModelSpec("quant", bw=8, bx=8))
            model.load_state_dict(quant.state_dict())
            apply_device_variation(model, chip)
            raw_accs.append(
                evaluate_accuracy(model, bench.data.val, cfg.batch_size)
            )
            recalibrate_batchnorm(
                model, bench.data.train, batch_size=cfg.batch_size
            )
            recal_accs.append(
                evaluate_accuracy(model, bench.data.val, cfg.batch_size)
            )
        rows.append(
            [
                label,
                float(np.mean(raw_accs)),
                float(np.min(raw_accs)),
                float(np.mean(recal_accs)),
                float(np.min(recal_accs)),
            ]
        )
        extras["populations"][label] = {
            "raw": raw_accs,
            "recalibrated": recal_accs,
        }

    mean_recovery = float(
        np.mean(
            [
                np.mean(pop["recalibrated"]) - np.mean(pop["raw"])
                for pop in extras["populations"].values()
            ]
        )
    )
    notes = [
        f"error-free quantized baseline: {baseline:.4f}; "
        f"{DEVICES} simulated devices per row",
        "static errors are stable per device, so BN recalibration can "
        "absorb them (unlike the dynamic AMS noise, cf. the freelunch "
        f"experiment); mean recovery here: {mean_recovery:+.4f}",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "Variation",
            "raw mean",
            "raw worst",
            "recal mean",
            "recal worst",
        ],
        rows=rows,
        notes=notes,
        extras=extras,
    )
