"""Table 1: quantization-only accuracy baselines (no AMS error).

Paper rows (ResNet-50 / ImageNet):

    FP32              0.778
    BW=8, BX=8        0.781   (full recovery, slightly above FP32)
    BW=6, BX=6        0.757   (~2% drop)
    BW=6, BX=4        0.606   (~17% drop)

The reproduction retrains the small ResNet on SynthImageNet with the
same DoReFa configurations and reports mean +/- sample std over repeated
validation passes.  The *shape* claims checked here: 8b ~= FP32,
6b a little below, 6b/4b far below.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Workbench
from repro.serve.spec import ModelSpec

EXPERIMENT_ID = "table1"
TITLE = "Table 1: top-1 accuracy after DoReFa retraining (no AMS error)"

#: (label, bw, bx); None means the FP32 baseline.  The first four rows
#: are the paper's; the remaining rows extend the sweep to where the
#: catastrophic drop appears at our (smaller-network) scale, since bit
#: sensitivity shifts down with Ntot and task difficulty (DESIGN.md).
CONFIGS = (
    ("FP32", None, None),
    ("BW=8, BX=8", 8, 8),
    ("BW=6, BX=6", 6, 6),
    ("BW=6, BX=4", 6, 4),
    ("BW=4, BX=4", 4, 4),
    ("BW=3, BX=3", 3, 3),
    ("BW=4, BX=2", 4, 2),
)


def run(bench: Workbench) -> ExperimentResult:
    rows = []
    accuracies = {}
    for label, bw, bx in CONFIGS:
        if bw is None:
            model, meta = bench.registry.get(ModelSpec("fp32"), fresh=True)
        else:
            model, meta = bench.registry.get(
                ModelSpec("quant", bw=bw, bx=bx), fresh=True
            )
        stats = bench.stats(model)
        accuracies[label] = stats.mean
        rows.append([label, stats.mean, stats.std, meta["best_epoch"]])

    notes = [
        "paper shape: 8b ~= FP32 > 6b >> 6b/4b",
        _shape_note(accuracies),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["Quantization", "Top-1 Accuracy", "Samp. Std. Dev.", "Best Epoch"],
        rows=rows,
        notes=notes,
        extras={"accuracies": accuracies},
    )


def _shape_note(acc: dict) -> str:
    fp32 = acc["FP32"]
    a88 = acc["BW=8, BX=8"]
    a66 = acc["BW=6, BX=6"]
    a64 = acc["BW=6, BX=4"]
    a42 = acc.get("BW=4, BX=2", a64)
    ok = a88 >= a66 >= a64 > a42 and (fp32 - a88) < (fp32 - a64)
    return (
        f"measured ordering {'HOLDS' if ok else 'VIOLATED'}: "
        f"fp32={fp32:.3f} 8b={a88:.3f} 6b={a66:.3f} 6b/4b={a64:.3f} "
        f"4b/2b={a42:.3f}"
    )
