"""Command-line entry point for the experiment harness.

Examples::

    python -m repro.experiments list
    python -m repro.experiments run table1
    python -m repro.experiments run fig8 --profile quick --seed 7
    python -m repro.experiments all --profile quick
    python -m repro.experiments explore examples/explore_grid.yaml --jobs 4
    python -m repro.experiments serve --spec ams:e5.5:n8 --requests 256
    python -m repro.experiments registry list
    python -m repro.experiments registry evict --spec quant:bw8:bx8
    python -m repro.experiments errmodels
    python -m repro.experiments obs list
    python -m repro.experiments obs summary <run_id>
    python -m repro.experiments obs diff <runA> <runB>

Every ``run`` / ``all`` / ``serve`` invocation records a run journal
under ``<results_dir>/runs/<run_id>/`` (manifest, JSONL event stream,
summary); the ``obs`` subcommands render those journals afterwards.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.common import Workbench
from repro.experiments.config import make_config
from repro.registry.layout import DEFAULT_CACHE_DIR
from repro.experiments.registry import (
    DEFAULT_ORDER,
    EXPERIMENTS,
    run_experiment,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the tables and figures of Rekhi et al., "
            "'Analog/Mixed-Signal Hardware Error Modeling for Deep "
            "Learning Inference' (DAC 2019)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    sub.add_parser(
        "errmodels",
        help="list registered AMS error models (see docs/error_models.md)",
    )

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    _add_common(run)

    everything = sub.add_parser("all", help="run every experiment in order")
    _add_common(everything)

    explore = sub.add_parser(
        "explore",
        help="search an (ENOB, Nmult) design space from a hardware-knob "
        "spec file (see docs/explore.md)",
    )
    explore.add_argument(
        "spec_file", help="YAML or JSON exploration spec (examples/)"
    )
    explore.add_argument(
        "--strategy",
        choices=("cheap-first", "exhaustive"),
        default=None,
        help="override the spec's search.strategy",
    )
    _add_common(explore)

    cache = sub.add_parser(
        "cache", help="deprecated alias of 'registry list' / 'registry evict'"
    )
    cache.add_argument("action", choices=("list", "clear"))
    cache.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)

    registry_cmd = sub.add_parser(
        "registry",
        help="manage the model-artifact registry "
        "(list|evict|warm|stats; see docs/registry.md)",
    )
    registry_cmd.add_argument(
        "action",
        nargs="?",
        help="list (cold-tier artifacts), evict (--name/--spec/--all), "
        "warm (--spec), or stats",
    )
    registry_cmd.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    registry_cmd.add_argument(
        "--name",
        default=None,
        help="artifact stem (file name without .npz/.json) to evict",
    )
    registry_cmd.add_argument(
        "--spec",
        default=None,
        help="model spec (e.g. ams:e5.5:n8) to evict or warm",
    )
    registry_cmd.add_argument(
        "--all",
        action="store_true",
        dest="evict_all",
        help="evict every cold-tier artifact",
    )
    _add_common(registry_cmd)

    export = sub.add_parser(
        "export", help="flatten results/<id>.json records into CSV files"
    )
    export.add_argument("--results-dir", default="results")
    export.add_argument("--out-dir", default="results/csv")

    serve = sub.add_parser(
        "serve",
        help="run the batched inference service over a trained model",
    )
    serve.add_argument(
        "--spec",
        default="quant:bw8:bx8",
        help="model spec, e.g. ams:e5.5:n8 (see repro.serve.ModelSpec)",
    )
    serve.add_argument(
        "--requests", type=int, default=256, help="requests to serve"
    )
    serve.add_argument(
        "--serve-workers",
        type=int,
        default=2,
        help="batch-executor threads in the engine",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="replica processes for the multi-process cluster; omit to "
        "serve in-process (the thread-pool service)",
    )
    serve.add_argument(
        "--shard-by",
        default="none",
        help="cluster request routing: 'none' (least-loaded) or 'model' "
        "(pin each spec to one replica); needs --workers",
    )
    serve.add_argument(
        "--max-batch", type=int, default=16, help="micro-batch size cap"
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="micro-batcher coalescing window",
    )
    serve.add_argument(
        "--queue-size", type=int, default=128, help="admission queue bound"
    )
    serve.add_argument(
        "--timeout-s", type=float, default=60.0, help="per-request deadline"
    )
    serve.add_argument(
        "--fallback-spec",
        default=None,
        help="cheaper spec served when the queue saturates (degradation)",
    )
    _add_common(serve)

    obs = sub.add_parser("obs", help="inspect recorded run journals")
    obs_sub = obs.add_subparsers(dest="action", required=True)
    obs_list = obs_sub.add_parser("list", help="list recorded runs")
    obs_tail = obs_sub.add_parser("tail", help="last events of one run")
    obs_tail.add_argument("run", help="run id or run directory")
    obs_tail.add_argument("-n", "--lines", type=int, default=20)
    obs_summary = obs_sub.add_parser(
        "summary", help="reconstruct a run's tables from its journal"
    )
    obs_summary.add_argument("run", help="run id or run directory")
    obs_diff = obs_sub.add_parser(
        "diff", help="compare two runs' manifests, sweeps and metrics"
    )
    obs_diff.add_argument("run", help="first run id or directory")
    obs_diff.add_argument("run_b", help="second run id or directory")
    for obs_cmd in (obs_list, obs_tail, obs_summary, obs_diff):
        obs_cmd.add_argument("--results-dir", default="results")
    return parser


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        default="full",
        choices=("full", "quick"),
        help="full = EXPERIMENTS.md numbers; quick = smoke-test scale",
    )
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument(
        "--results-dir",
        default="results",
        help="where to write <experiment>.json records",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for sweep fan-out (1 = serial; results "
            "are bit-identical either way)"
        ),
    )
    parser.add_argument(
        "--profile-ops",
        action="store_true",
        help="record per-op wall time / allocations and print a table",
    )
    parser.add_argument(
        "--no-compile",
        action="store_true",
        help=(
            "evaluate through the interpreted forward pass instead of "
            "the fused compiled executor (results are bit-identical; "
            "this is a speed/debugging knob)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=("reference", "fast", "auto"),
        default=None,
        help=(
            "compiled execution backend: 'reference' (bit-identical to "
            "the interpreter, the default), 'fast' (blocked-GEMM with "
            "folded batch norm, tolerance-checked), or 'auto' (fast "
            "when available)"
        ),
    )
    parser.add_argument(
        "--run-id",
        default=None,
        help=(
            "journal run id under <results-dir>/runs/ (default: a "
            "timestamp-pid id)"
        ),
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="RUN_ID",
        help=(
            "resume a killed/interrupted run: training continues from "
            "its epoch checkpoints and sweeps reuse RUN_ID's completed "
            "grid points, re-running only failed/missing ones (see "
            "docs/fault_tolerance.md)"
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        help=(
            "extra attempts for a sweep point whose worker process "
            "died (default 2; the pool is rebuilt between attempts)"
        ),
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=None,
        help=(
            "base seconds between such attempts, doubling each time "
            "(default 0.5)"
        ),
    )


def _run_one(
    name: str,
    bench: Workbench,
    results_dir: str,
    profile_ops: bool = False,
) -> None:
    from repro.utils import profiler

    start = time.time()
    if profile_ops:
        with profiler.profiled() as prof:
            result = run_experiment(name, bench)
    else:
        result = run_experiment(name, bench)
    elapsed = time.time() - start
    print(result.table())
    if profile_ops:
        print()
        print(prof.report())
    path = result.save(results_dir)
    print(f"[{name}] done in {elapsed:.1f}s -> {path}\n")


#: Recognized ``registry`` actions (sorted; did-you-mean on a miss).
_REGISTRY_ACTIONS = ("evict", "list", "stats", "warm")


def _handle_cache(action: str, cache_dir: str) -> int:
    """Deprecated ``cache list|clear`` alias over the registry CLI.

    Same artifacts, but eviction now goes through
    :func:`repro.registry.layout.evict_artifacts` — which never
    deletes a **live** temporary, so ``cache clear`` racing a worker
    mid-publication can no longer tear the worker's atomic write.
    """
    from repro.obs.deprecation import warn_once

    warn_once(
        "cli.cache",
        "'cache list|clear' is deprecated; use 'registry list' / "
        "'registry evict --all' — same artifacts, race-safe eviction",
    )
    if action == "list":
        return _registry_list(cache_dir)
    return _registry_evict(cache_dir, everything=True)


def _registry_list(cache_dir: str) -> int:
    """Print the cold tier: complete artifacts plus tmp-file health."""
    import os

    from repro.registry.layout import scan_artifacts

    if not os.path.isdir(cache_dir):
        print(f"no cache at {cache_dir}")
        return 0
    entries, stale, live = scan_artifacts(cache_dir)
    if not entries:
        print(f"cache at {cache_dir} is empty")
    for entry in entries:
        print(f"{entry.size_bytes // 1024:6d} KB  {entry.name}")
    if stale:
        print(
            f"({len(stale)} stale tmp file(s) from crashed workers; "
            "'registry evict' removes them)"
        )
    if live:
        print(
            f"({len(live)} live tmp file(s): writers still publishing, "
            "left alone)"
        )
    return 0


def _registry_stats(cache_dir: str) -> int:
    """Cold-tier totals (the warm tier is per-process, see stats())."""
    from repro.registry.layout import scan_artifacts

    entries, stale, live = scan_artifacts(cache_dir)
    total_kb = sum(entry.size_bytes for entry in entries) // 1024
    print(
        f"cold tier at {cache_dir}: {len(entries)} artifact(s), "
        f"{total_kb} KB"
    )
    print(f"stale tmp files: {len(stale)}; live tmp files: {len(live)}")
    return 0


def _registry_evict(
    cache_dir: str, names=None, everything: bool = False
) -> int:
    """Evict cold artifacts; stale tmps are swept, live tmps kept."""
    from repro.registry.layout import evict_artifacts, scan_artifacts

    _entries, stale, _live = scan_artifacts(cache_dir)
    removed, live_kept = evict_artifacts(
        cache_dir, names=names, everything=everything
    )
    print(
        f"removed {removed} cache files from {cache_dir}"
        + (f" (including {len(stale)} stale tmp)" if stale else "")
    )
    if live_kept:
        print(
            f"kept {len(live_kept)} live tmp file(s) "
            "(writers still publishing)"
        )
    return 0


def _registry_warm_body(args, config, spec) -> int:
    """Train-or-load ``spec`` and admit it to this run's warm tier."""
    bench = Workbench(config, jobs=args.jobs)
    registry = bench.registry
    registry.warm(spec)
    stats = registry.stats()
    print(f"warmed {spec.resolved(config).token()}")
    print(f"warm tier now: {', '.join(stats['warm'])}")
    return 0


def _handle_registry(args, argv: List[str]) -> int:
    """Dispatch ``registry list|evict|warm|stats`` (exit 2 on misuse)."""
    import difflib

    action = args.action
    if action not in _REGISTRY_ACTIONS:
        close = difflib.get_close_matches(
            action or "", _REGISTRY_ACTIONS, n=1
        )
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        print(
            f"error: unknown registry action {action!r}; options: "
            f"{', '.join(_REGISTRY_ACTIONS)}{hint}",
            file=sys.stderr,
        )
        return 2
    if action == "list":
        return _registry_list(args.cache_dir)
    if action == "stats":
        return _registry_stats(args.cache_dir)

    from repro.errors import ReproError
    from repro.serve.spec import ModelSpec

    if action == "evict":
        chosen = sum(
            1 for flag in (args.name, args.spec, args.evict_all) if flag
        )
        if chosen != 1:
            print(
                "error: registry evict needs exactly one of "
                "--name, --spec, or --all",
                file=sys.stderr,
            )
            return 2
        if args.evict_all:
            return _registry_evict(args.cache_dir, everything=True)
        if args.name:
            return _registry_evict(args.cache_dir, names=[args.name])
        try:
            config = make_config(profile=args.profile, seed=args.seed)
            spec = ModelSpec.parse(args.spec).resolved(config)
            stem = f"{config.cache_key_prefix()}-{spec.cache_name()}"
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return _registry_evict(args.cache_dir, names=[stem])
    # warm: journaled like run/serve — the promote events and tier
    # metrics land in the run journal for obs summary.
    if not args.spec:
        print("error: registry warm needs --spec", file=sys.stderr)
        return 2
    try:
        spec = ModelSpec.parse(args.spec)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    config = make_config(
        profile=args.profile,
        seed=args.seed,
        results_dir=args.results_dir,
        cache_dir=args.cache_dir,
    )
    return _journaled(
        args, config, argv, lambda: _registry_warm_body(args, config, spec)
    )


def _handle_errmodels() -> int:
    """Print every registered error model with params and declarations."""
    from repro.ams.models import get_model, list_models, model_params

    for name in list_models():
        model = get_model(name)
        params = ", ".join(
            f"{key}={getattr(model, key)!r}"
            if hasattr(model, key)
            else key
            for key in model_params(type(model))
        )
        flags = []
        if model.data_dependent:
            flags.append("data-dependent")
        if not model.compiled_safe:
            flags.append("interpreter-only")
        if model.extra_streams:
            flags.append("streams=" + ",".join(model.extra_streams))
        suffix = f"  [{', '.join(flags)}]" if flags else ""
        print(f"{name:18s} {model.describe()}{suffix}")
        print(f"{'':18s} params: {params or '(none)'}")
    return 0


def _handle_obs(args) -> int:
    """Render recorded run journals (list / tail / summary / diff)."""
    from repro.errors import ReproError
    from repro.obs.summary import (
        diff_runs,
        render_run_list,
        summarize_run,
        tail_run,
    )

    try:
        if args.action == "list":
            print(render_run_list(args.results_dir))
        elif args.action == "tail":
            print(tail_run(args.run, args.results_dir, n=args.lines))
        elif args.action == "summary":
            print(summarize_run(args.run, args.results_dir))
        else:
            print(diff_runs(args.run, args.run_b, args.results_dir))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _journaled(args, config, argv: List[str], body) -> int:
    """Run ``body()`` under a run journal; non-zero exit on SweepError.

    The journal opens before and closes after the command: manifest at
    start, a final default-registry metrics snapshot, and a run_end
    whose status reflects how the command finished.  A
    :class:`~repro.errors.SweepError` (grid points failed — they were
    all journaled as ``sweep.point_failed`` already) becomes exit code
    1 instead of a traceback.

    The body runs under :func:`repro.ckpt.graceful_shutdown`: SIGINT/
    SIGTERM requests a drain, the trainer/sweep engine writes a final
    checkpoint and journals ``run.interrupted`` at the next boundary,
    and the resulting :class:`~repro.errors.RunInterrupted` becomes
    exit code 130 with a resume hint.
    """
    from repro.ckpt import graceful_shutdown
    from repro.errors import RunInterrupted, SweepError
    from repro.obs.journal import end_run, journal_event, start_run
    from repro.obs.metrics import default_registry

    journal = start_run(
        results_dir=config.results_dir,
        run_id=getattr(args, "run_id", None),
        argv=argv,
        config=config,
        seed=args.seed,
    )
    print(f"[journal] run {journal.run_id} -> {journal.run_dir}")
    resume = getattr(args, "resume", None)
    if resume:
        journal_event("note", message=f"resuming from run {resume}")
    try:
        with graceful_shutdown():
            code = body()
    except SweepError as exc:
        print(f"error: {exc}", file=sys.stderr)
        journal.metrics_snapshot(default_registry(), scope="default")
        end_run(status="failed", error=str(exc))
        return 1
    except RunInterrupted as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        print(
            f"resume with: --resume {journal.run_id}",
            file=sys.stderr,
        )
        journal.metrics_snapshot(default_registry(), scope="default")
        end_run(status="interrupted", error=str(exc))
        return 130
    except BaseException:
        end_run(status="failed")
        raise
    journal.metrics_snapshot(default_registry(), scope="default")
    end_run(status="ok" if code == 0 else "failed")
    return code


def _handle_explore(args, argv: List[str]) -> int:
    """Run a design-space exploration spec (see docs/explore.md).

    The spec is parsed and validated *before* the run journal opens, so
    a typo'd knob fails fast with exit 2 and no empty run directory.
    """
    from dataclasses import replace as dc_replace

    from repro.errors import ReproError
    from repro.explore import load_spec

    try:
        spec = load_spec(args.spec_file)
        if args.strategy:
            spec = dc_replace(spec, strategy=args.strategy)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    config = make_config(
        profile=args.profile, seed=args.seed, results_dir=args.results_dir
    )
    return _journaled(
        args, config, argv, lambda: _explore_body(args, config, spec)
    )


def _explore_body(args, config, spec) -> int:
    from repro.explore import render_explore, run_explore
    from repro.obs.journal import current_journal, read_events

    bench = Workbench(
        config,
        jobs=args.jobs,
        resume_run=args.resume,
        retries=args.retries,
        retry_backoff=args.retry_backoff,
    )
    result = run_explore(bench, spec)
    counts = result.counts
    print(
        f"[{spec.name}] {len(result.plans)} points: "
        f"{counts['evaluated']} evaluated, {counts['pruned']} pruned, "
        f"{counts['merged']} merged\n"
    )
    # Render from the journal, not the in-memory result: the report is
    # a pure function of the event stream, so what this prints is what
    # 'obs summary' will reconstruct later, byte for byte.
    journal = current_journal()
    print(render_explore(read_events(journal.run_dir, config.results_dir)))
    return 0


def _handle_serve(args, argv: List[str]) -> int:
    """Drive the batched inference service end to end from the CLI."""
    # Fail fast on cluster flags before any training or journaling.
    from repro.serve.cluster import SHARD_POLICIES

    if args.shard_by not in SHARD_POLICIES:
        import difflib

        close = difflib.get_close_matches(args.shard_by, SHARD_POLICIES, n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        print(
            f"error: unknown --shard-by {args.shard_by!r}; options: "
            f"{', '.join(SHARD_POLICIES)}{hint}",
            file=sys.stderr,
        )
        return 2
    if args.workers is not None and args.workers < 1:
        print(
            f"error: --workers must be >= 1, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    if args.workers is None and args.shard_by != "none":
        print(
            "error: --shard-by needs the multi-process cluster; "
            "add --workers N",
            file=sys.stderr,
        )
        return 2
    config = make_config(
        profile=args.profile, seed=args.seed, results_dir=args.results_dir
    )
    return _journaled(args, config, argv, lambda: _serve_body(args, config))


def _serve_body(args, config) -> int:
    import numpy as np

    from repro.serve import InferenceEngine, InferenceService, ModelSpec
    from repro.utils import profiler

    bench = Workbench(config, jobs=args.jobs)
    spec = ModelSpec.parse(args.spec)
    fallback = (
        ModelSpec.parse(args.fallback_spec) if args.fallback_spec else None
    )
    if args.workers is not None:
        return _serve_cluster_body(args, config, bench, spec, fallback)
    engine = InferenceEngine(
        bench,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        workers=args.serve_workers,
    )
    print(f"warming {spec}" + (f" (fallback {fallback})" if fallback else ""))
    engine.warm(spec, *([fallback] if fallback else []))

    images = bench.data.val.images
    labels = bench.data.val.labels
    count = args.requests
    prof_ctx = profiler.profiled() if args.profile_ops else None
    prof = prof_ctx.__enter__() if prof_ctx else None
    try:
        with engine, InferenceService(
            engine,
            queue_size=args.queue_size,
            workers=2,
            timeout_s=args.timeout_s,
            fallback_spec=fallback,
        ) as service:
            start = time.time()
            futures = [
                service.submit(
                    spec, images[i % len(images)], request_id=i, block=True
                )
                for i in range(count)
            ]
            predictions = [f.result(timeout=args.timeout_s) for f in futures]
            elapsed = time.time() - start
    finally:
        if prof_ctx:
            prof_ctx.__exit__(None, None, None)

    from repro.obs.journal import current_journal, journal_event
    from repro.obs.result import EvalResult

    result = EvalResult.from_predictions(
        predictions,
        [labels[i % len(labels)] for i in range(count)],
        wall_time_s=elapsed,
        noise_seed=args.seed,
    )
    degraded = sum(p.degraded for p in predictions)
    journal_event("serve.stats", stats=engine.stats().snapshot())
    journal_event("note", message=f"serve eval result: {result!r}")
    journal = current_journal()
    if journal is not None:
        journal.metrics_snapshot(engine.stats().registry, scope="serve")
    print(engine.stats().report())
    print(
        f"\nserved {count} requests in {elapsed:.2f}s "
        f"({count / elapsed:.1f} req/s), accuracy {result:.4f}"
        + (f", {degraded} degraded" if degraded else "")
    )
    if prof is not None:
        print()
        print(prof.report())
    batch_sizes = [p.batch_size for p in predictions]
    print(
        f"batch sizes: min {min(batch_sizes)}, "
        f"mean {np.mean(batch_sizes):.2f}, max {max(batch_sizes)}"
    )
    return 0


def _serve_cluster_body(args, config, bench, spec, fallback) -> int:
    """Serve through the multi-process cluster and its async front door.

    Interrupt contract matches sweeps: the first SIGINT/SIGTERM drains
    — outstanding requests finish, replicas stop cleanly, the journal
    records what was served — and the run exits 130 with a resume hint.
    """
    from repro.ckpt import interrupt_requested
    from repro.errors import RunInterrupted
    from repro.obs.journal import current_journal, journal_event
    from repro.obs.result import EvalResult
    from repro.serve import ClusterService, ServeCluster

    print(
        f"starting cluster: {args.workers} replica processes, "
        f"shard_by={args.shard_by}"
    )
    images = bench.data.val.images
    labels = bench.data.val.labels
    count = args.requests
    interrupted = False
    with ServeCluster(
        bench, workers=args.workers, shard_by=args.shard_by
    ) as cluster:
        print(f"warming {spec}" + (f" (fallback {fallback})" if fallback else ""))
        cluster.warm(spec, *([fallback] if fallback else []))
        with ClusterService(
            cluster,
            queue_size=args.queue_size,
            max_batch=args.max_batch,
            max_wait_s=args.max_wait_ms / 1e3,
            timeout_s=args.timeout_s,
            fallback_spec=fallback,
        ) as service:
            start = time.time()
            futures = []
            for i in range(count):
                if interrupt_requested():
                    interrupted = True
                    break
                futures.append(
                    service.submit(spec, images[i % len(images)], i)
                )
            predictions = [f.result(timeout=args.timeout_s) for f in futures]
            elapsed = time.time() - start
        cluster.flush_worker_stats()
        stats = cluster.stats()
        journal_event("serve.stats", stats=stats.snapshot())
        journal = current_journal()
        if journal is not None:
            journal.metrics_snapshot(stats.registry, scope="serve")
        print(stats.report())
    served = len(predictions)
    if served:
        result = EvalResult.from_predictions(
            predictions,
            [labels[i % len(labels)] for i in range(served)],
            wall_time_s=elapsed,
            noise_seed=args.seed,
        )
        journal_event("note", message=f"serve eval result: {result!r}")
        print(
            f"\nserved {served} requests in {elapsed:.2f}s "
            f"({served / elapsed:.1f} req/s), accuracy {result:.4f}"
        )
    if interrupted:
        raise RunInterrupted(
            f"serve drained after {served}/{count} requests"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    cli_argv = list(sys.argv[1:] if argv is None else argv)
    args = parser.parse_args(argv)
    if getattr(args, "jobs", 1) < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if getattr(args, "no_compile", False):
        from repro import compile as repro_compile

        repro_compile.set_enabled(False)
    if getattr(args, "backend", None):
        from repro import compile as repro_compile

        repro_compile.set_default_backend(args.backend)
    if args.command == "list":
        for name in DEFAULT_ORDER:
            doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
            print(f"{name:12s} {doc}")
        return 0
    if args.command == "errmodels":
        return _handle_errmodels()
    if args.command == "cache":
        return _handle_cache(args.action, args.cache_dir)
    if args.command == "registry":
        return _handle_registry(args, cli_argv)
    if args.command == "obs":
        return _handle_obs(args)
    if args.command == "serve":
        return _handle_serve(args, cli_argv)
    if args.command == "explore":
        return _handle_explore(args, cli_argv)
    if args.command == "export":
        from repro.experiments.export import export_all

        for path in export_all(args.results_dir, args.out_dir):
            print(path)
        return 0

    config = make_config(
        profile=args.profile, seed=args.seed, results_dir=args.results_dir
    )
    bench = Workbench(
        config,
        jobs=args.jobs,
        resume_run=args.resume,
        retries=args.retries,
        retry_backoff=args.retry_backoff,
    )

    def _body() -> int:
        if args.command == "run":
            _run_one(
                args.experiment, bench, args.results_dir, args.profile_ops
            )
        else:
            for name in DEFAULT_ORDER:
                _run_one(name, bench, args.results_dir, args.profile_ops)
        return 0

    return _journaled(args, config, cli_argv, _body)


if __name__ == "__main__":
    sys.exit(main())
