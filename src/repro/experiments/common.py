"""Shared experiment infrastructure: the :class:`Workbench`.

The paper's experiments share trained artifacts (the pretrained FP32
ResNet-50, retrained quantized baselines, AMS-retrained variants).  The
workbench builds them on demand, caches state dicts + metadata on disk,
and hands out freshly constructed models with the cached weights loaded,
so running ``fig4`` after ``table1`` does not retrain the 8b baseline.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from dataclasses import replace as dc_replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ams.vmac import VMACConfig
from repro.data.synthetic import SynthImageNet, SynthImageNetConfig
from repro.experiments.config import ExperimentConfig
from repro.models.factory import AMSFactory, DoReFaFactory, FP32Factory
from repro.models.resnet import ResNet, resnet_small
from repro.nn.module import Module
from repro.quant.qmodules import InputQuantizer, QuantConfig
from repro.serve.spec import ModelSpec
from repro.train.evaluate import EvalStats, repeated_evaluate
from repro.train.freeze import freeze_layers
from repro.train.trainer import TrainConfig, Trainer
from repro.utils.serialization import (
    atomic_write_json,
    load_state,
    save_state,
)
from repro.utils.tabulate import format_table


@dataclass
class ExperimentResult:
    """Printable/serializable result of one experiment."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[object]]
    notes: List[str] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)
    charts: List[str] = field(default_factory=list)

    def table(self) -> str:
        text = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        for chart in self.charts:
            text += "\n\n" + chart
        return text

    def save(self, results_dir: str) -> str:
        os.makedirs(results_dir, exist_ok=True)
        path = os.path.join(results_dir, f"{self.experiment_id}.json")
        payload = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": self.headers,
            "rows": self.rows,
            "notes": self.notes,
            "extras": self.extras,
        }
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, default=_jsonable)
        return path


def _jsonable(value):
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serializable: {type(value)}")


def _warn_deprecated(name: str, replacement: str) -> None:
    """Emit the deprecation warning for ``name`` exactly once per process.

    Routed through the one :mod:`repro.obs.deprecation` registry so
    pool workers (which call ``mark_worker_process`` at startup) stay
    silent instead of each re-warning for shims the parent process
    already warned about.
    """
    from repro.obs.deprecation import warn_once

    warn_once(
        f"workbench.{name}",
        f"Workbench.{name}() is deprecated; use {replacement} — same "
        "cache artifacts, nothing retrains",
        stacklevel=4,
    )


class Workbench:
    """Builds, trains and caches the models the experiments share.

    ``jobs`` is the worker-process count the sweep engine
    (:func:`repro.parallel.sweep_map`) uses when an experiment fans its
    grid points out; ``1`` (the default) keeps every experiment on the
    historical serial path, bit for bit.

    ``resume_run`` (the CLI's ``--resume <run_id>``) enables fault
    recovery: training loads per-epoch checkpoints written beside the
    cache entries, and sweeps reuse the named run's completed grid
    points (see ``docs/fault_tolerance.md``).  ``retries`` /
    ``retry_backoff`` tune the sweep engine's tolerance for dying
    worker processes.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        jobs: int = 1,
        resume_run: Optional[str] = None,
        retries: Optional[int] = None,
        retry_backoff: Optional[float] = None,
    ):
        self.config = config
        self.jobs = jobs
        self.resume_run = resume_run
        if retries is not None:
            self.retries = retries
        if retry_backoff is not None:
            self.retry_backoff = retry_backoff
        self._data: Optional[SynthImageNet] = None
        self._accuracy_cache: Dict[str, dict] = {}
        self._registry = None

    # ------------------------------------------------------------------
    # model acquisition (the registry owns all tiers)
    # ------------------------------------------------------------------
    @property
    def registry(self):
        """This workbench's :class:`repro.registry.ModelRegistry`.

        The single model-acquisition entry point:
        ``bench.registry.get(spec, fresh=True)`` replaces the
        deprecated ``bench.model(spec)`` bit for bit.
        """
        if self._registry is None:
            from repro.registry import ModelRegistry

            self._registry = ModelRegistry(self)
        return self._registry

    # ------------------------------------------------------------------
    # data
    # ------------------------------------------------------------------
    @property
    def data(self) -> SynthImageNet:
        if self._data is None:
            cfg = self.config
            self._data = SynthImageNet(
                SynthImageNetConfig(
                    num_classes=cfg.num_classes,
                    image_size=cfg.image_size,
                    train_per_class=cfg.train_per_class,
                    val_per_class=cfg.val_per_class,
                    distractor_mix=cfg.distractor_mix,
                    noise_std=cfg.noise_std,
                    seed=cfg.seed,
                )
            )
        return self._data

    # ------------------------------------------------------------------
    # model construction (untrained)
    # ------------------------------------------------------------------
    def _finish(self, model: ResNet) -> ResNet:
        """Post-construction calibration shared by all variants."""
        if isinstance(model.input_adapter, InputQuantizer):
            model.input_adapter.calibrate(self.data.train.images)
        return model

    def build(
        self,
        spec: ModelSpec,
        *,
        with_probes: bool = False,
        noise_tag: str = "",
        calibrate: bool = True,
    ) -> ResNet:
        """Construct the untrained, input-calibrated network for ``spec``.

        ``with_probes`` inserts activation probes (Fig. 6
        instrumentation; parameter names are unchanged, so state dicts
        stay interchangeable).  ``noise_tag`` labels the AMS noise
        stream of custom eval-time studies; ``ams_eval`` defaults to
        the historical ``"evalonly"`` tag so existing results
        reproduce bit for bit.  ``calibrate=False`` skips the
        input-quantizer data calibration — for processes (serving
        replicas) that receive the calibration constant out of band
        and must not pay for materializing the training split.
        """
        spec = spec.resolved(self.config)
        cfg = self.config
        if spec.variant == "fp32":
            factory = FP32Factory(seed=cfg.seed + 1, with_probes=with_probes)
        elif spec.variant == "quant":
            factory = DoReFaFactory(
                QuantConfig(spec.bw, spec.bx),
                seed=cfg.seed + 1,
                with_probes=with_probes,
            )
        else:
            if spec.variant == "ams_eval" and not noise_tag:
                noise_tag = "evalonly"
            noise_seed = zlib.crc32(
                f"{cfg.seed}-{spec.enob}-{spec.nmult}-{noise_tag}".encode()
            )
            factory = AMSFactory(
                QuantConfig(spec.bw, spec.bx),
                VMACConfig(
                    enob=spec.enob, nmult=spec.nmult, bw=spec.bw, bx=spec.bx
                ),
                seed=cfg.seed + 1,
                noise_seed=noise_seed,
                inject_last_in_training=spec.inject_last_in_training,
                with_probes=with_probes,
                error_model=spec.error_model or "lumped_gaussian",
                error_model_params=dict(spec.error_model_params),
            )
        model = resnet_small(factory, num_classes=cfg.num_classes)
        return self._finish(model) if calibrate else model

    # ------------------------------------------------------------------
    # cached training
    # ------------------------------------------------------------------
    def _cache_base(self, name: str) -> str:
        # The registry layout is the single home for cache paths
        # (tools/registry_lint.py forbids building them anywhere else).
        from repro.registry.layout import artifact_base

        return artifact_base(self.config, name)

    def _train_cached(
        self,
        name: str,
        build: Callable[[], ResNet],
        train_config: TrainConfig,
        init_state: Optional[dict] = None,
        freeze: Sequence[str] = (),
    ) -> Tuple[ResNet, dict]:
        """Train-or-load a model by cache name.

        Returns ``(model_with_best_weights, metadata)`` where metadata
        records the best validation accuracy and training history.
        """
        from repro.obs.journal import journal_event

        base = self._cache_base(name)
        state_path = base + ".npz"
        meta_path = base + ".json"
        ckpt_path = base + ".ckpt.npz"
        model = build()
        if os.path.exists(state_path) and os.path.exists(meta_path):
            model.load_state_dict(load_state(state_path))
            with open(meta_path) as fh:
                meta = json.load(fh)
            journal_event("bench.artifact", name=name, source="cache")
            return model, meta

        if init_state is not None:
            model.load_state_dict(init_state)
        if freeze:
            freeze_layers(model, freeze)
        # Per-epoch checkpoints make a killed training run resumable
        # (``--resume``); writing them is cheap next to an epoch, so
        # they are always on.  Resume is only honored when requested —
        # a stale checkpoint must never silently shape a fresh run.
        resume = self.resume_run is not None and os.path.exists(ckpt_path)
        result = Trainer(train_config).fit(
            model,
            self.data.train,
            self.data.val,
            checkpoint_path=ckpt_path,
            resume=resume,
        )
        meta = {
            "name": name,
            "best_accuracy": result.best_accuracy,
            "best_epoch": result.best_epoch,
            "epochs_run": result.epochs_run,
            "stopped_early": result.stopped_early,
            "history": result.history,
        }
        # save_state / atomic_write_json are crash-safe (tmp + fsync +
        # rename + dir fsync, pid-unique temporaries): sweep workers
        # sharing cache_dir never observe a partial artifact, and even
        # two processes redundantly training the same artifact cannot
        # corrupt it.
        save_state(state_path, model.state_dict())
        atomic_write_json(meta_path, meta)
        try:
            os.remove(ckpt_path)  # the cached artifact supersedes it
        except OSError:
            pass
        journal_event("bench.artifact", name=name, source="trained")
        return model, meta

    def _pretrain_config(self) -> TrainConfig:
        cfg = self.config
        return TrainConfig(
            epochs=cfg.pretrain_epochs,
            batch_size=cfg.batch_size,
            lr=cfg.lr,
            patience=cfg.patience,
            shuffle_seed=cfg.seed + 7,
        )

    def _retrain_config(self) -> TrainConfig:
        cfg = self.config
        return TrainConfig(
            epochs=cfg.retrain_epochs,
            batch_size=cfg.batch_size,
            lr=cfg.retrain_lr,
            patience=cfg.patience,
            shuffle_seed=cfg.seed + 8,
        )

    # ------------------------------------------------------------------
    # the shared artifacts: train-or-load, keyed by ModelSpec
    # ------------------------------------------------------------------
    def model(self, spec: ModelSpec) -> Tuple[ResNet, dict]:
        """Deprecated: use ``registry.get(spec, fresh=True)``.

        The registry (:mod:`repro.registry`) is now the single model-
        acquisition entry point; this shim forwards to it — same cache
        artifacts, same training recursion, bit-identical models —
        and warns once per process.
        """
        _warn_deprecated(
            "model", "Workbench.registry.get(spec, fresh=True)"
        )
        return self.registry.get(spec, fresh=True)

    def _train_or_load(self, spec: ModelSpec) -> Tuple[ResNet, dict]:
        """Train-or-load the artifact named by ``spec``.

        The registry's cold-tier/miss backend (reach it through
        :meth:`registry`).  Cache file names are exactly those of the
        pre-spec keyword methods, so adopting the spec API never
        retrains an existing artifact.

        - ``fp32``: pretrained from scratch.
        - ``quant``: DoReFa-retrained from ``fp32`` with a doubled
          epoch budget (early stopping still applies) so the baseline
          is at convergence — otherwise AMS retraining at high ENOB
          would beat it merely by training longer, inverting the
          paper's Fig. 4 high-ENOB behaviour.
        - ``ams``: AMS-error-in-the-loop retraining from the matching
          ``quant`` baseline (optionally with frozen layers).
        - ``ams_eval``: the ``quant`` baseline's best weights with AMS
          error injected at evaluation time only; the returned
          metadata is the baseline's, marked ``eval_only``.
        """
        spec = spec.resolved(self.config)
        if spec.variant == "fp32":
            return self._train_cached(
                spec.cache_name(),
                lambda: self.build(spec),
                self._pretrain_config(),
            )
        if spec.variant == "quant":
            fp32, _ = self._train_or_load(spec.baseline())
            retrain = self._retrain_config()
            retrain = dc_replace(retrain, epochs=retrain.epochs * 2)
            return self._train_cached(
                spec.cache_name(),
                lambda: self.build(spec),
                retrain,
                init_state=fp32.state_dict(),
            )
        if spec.variant == "ams":
            quant, _ = self._train_or_load(spec.baseline())
            return self._train_cached(
                spec.cache_name(),
                lambda: self.build(spec),
                self._retrain_config(),
                init_state=quant.state_dict(),
                freeze=spec.freeze,
            )
        quant, quant_meta = self._train_or_load(spec.baseline())
        model = self.build(spec)
        model.load_state_dict(quant.state_dict())
        return model, dict(quant_meta, eval_only=True)

    # ------------------------------------------------------------------
    # deprecated keyword shims (the pre-ModelSpec surface)
    # ------------------------------------------------------------------
    def build_fp32(self) -> ResNet:
        """Deprecated: use ``build(ModelSpec('fp32'))``."""
        _warn_deprecated("build_fp32", "Workbench.build(ModelSpec('fp32'))")
        return self.build(ModelSpec("fp32"))

    def build_quantized(self, bw: int, bx: int) -> ResNet:
        """Deprecated: use ``build(ModelSpec('quant', bw=.., bx=..))``."""
        _warn_deprecated(
            "build_quantized", "Workbench.build(ModelSpec('quant', ...))"
        )
        return self.build(ModelSpec("quant", bw=bw, bx=bx))

    def build_ams(
        self,
        enob: float,
        nmult: Optional[int] = None,
        bw: int = 8,
        bx: int = 8,
        inject_last_in_training: bool = False,
        with_probes: bool = False,
        noise_tag: str = "",
    ) -> ResNet:
        """Deprecated: use ``build(ModelSpec('ams', ...))``."""
        _warn_deprecated("build_ams", "Workbench.build(ModelSpec('ams', ...))")
        spec = ModelSpec(
            "ams",
            enob=enob,
            nmult=nmult,
            bw=bw,
            bx=bx,
            inject_last_in_training=inject_last_in_training,
        )
        return self.build(spec, with_probes=with_probes, noise_tag=noise_tag)

    def fp32_model(self) -> Tuple[ResNet, dict]:
        """Deprecated: use ``registry.get(ModelSpec('fp32'))``."""
        _warn_deprecated(
            "fp32_model", "Workbench.registry.get(ModelSpec('fp32'))"
        )
        return self.registry.get(ModelSpec("fp32"), fresh=True)

    def quantized_model(self, bw: int, bx: int) -> Tuple[ResNet, dict]:
        """Deprecated: use ``registry.get(ModelSpec('quant', ...))``."""
        _warn_deprecated(
            "quantized_model",
            "Workbench.registry.get(ModelSpec('quant', ...))",
        )
        return self.registry.get(
            ModelSpec("quant", bw=bw, bx=bx), fresh=True
        )

    def ams_retrained(
        self,
        enob: float,
        nmult: Optional[int] = None,
        bw: int = 8,
        bx: int = 8,
        freeze: Sequence[str] = (),
        inject_last_in_training: bool = False,
    ) -> Tuple[ResNet, dict]:
        """Deprecated: use ``registry.get(ModelSpec('ams', ...))``."""
        _warn_deprecated(
            "ams_retrained", "Workbench.registry.get(ModelSpec('ams', ...))"
        )
        return self.registry.get(
            ModelSpec(
                "ams",
                enob=enob,
                nmult=nmult,
                bw=bw,
                bx=bx,
                freeze=tuple(freeze),
                inject_last_in_training=inject_last_in_training,
            ),
            fresh=True,
        )

    def ams_eval_only(
        self, enob: float, nmult: Optional[int] = None, bw: int = 8, bx: int = 8
    ) -> ResNet:
        """Deprecated: use ``registry.get(ModelSpec('ams_eval', ...))``."""
        _warn_deprecated(
            "ams_eval_only",
            "Workbench.registry.get(ModelSpec('ams_eval', ...))",
        )
        model, _ = self.registry.get(
            ModelSpec("ams_eval", enob=enob, nmult=nmult, bw=bw, bx=bx),
            fresh=True,
        )
        return model

    # ------------------------------------------------------------------
    # probed rebuilds (Fig. 6): same weights, instrumented layers
    # ------------------------------------------------------------------
    def probed(self, spec: ModelSpec) -> ResNet:
        """The trained artifact for ``spec`` rebuilt with activation probes."""
        trained, _ = self.registry.get(spec, fresh=True)
        model = self.build(spec, with_probes=True)
        model.load_state_dict(trained.state_dict())
        return model

    def build_fp32_probed(self) -> ResNet:
        """The trained FP32 baseline rebuilt with activation probes."""
        return self.probed(ModelSpec("fp32"))

    def build_quantized_probed(self, bw: int, bx: int) -> ResNet:
        """A trained quantized baseline rebuilt with activation probes."""
        return self.probed(ModelSpec("quant", bw=bw, bx=bx))

    def ams_retrained_probed(
        self, enob: float, nmult: Optional[int] = None
    ) -> ResNet:
        """An AMS-retrained model rebuilt with activation probes."""
        return self.probed(ModelSpec("ams", enob=enob, nmult=nmult))

    # ------------------------------------------------------------------
    def stats(self, model: Module) -> EvalStats:
        """The paper's reporting protocol on the validation split."""
        return repeated_evaluate(
            model,
            self.data.val,
            passes=self.config.eval_passes,
            batch_size=self.config.batch_size,
        )
