"""Shared experiment infrastructure: the :class:`Workbench`.

The paper's experiments share trained artifacts (the pretrained FP32
ResNet-50, retrained quantized baselines, AMS-retrained variants).  The
workbench builds them on demand, caches state dicts + metadata on disk,
and hands out freshly constructed models with the cached weights loaded,
so running ``fig4`` after ``table1`` does not retrain the 8b baseline.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ams.vmac import VMACConfig
from repro.data.synthetic import SynthImageNet, SynthImageNetConfig
from repro.experiments.config import ExperimentConfig
from repro.models.factory import AMSFactory, DoReFaFactory, FP32Factory
from repro.models.resnet import ResNet, resnet_small
from repro.nn.module import Module
from repro.quant.qmodules import InputQuantizer, QuantConfig
from repro.train.evaluate import EvalStats, repeated_evaluate
from repro.train.freeze import freeze_layers
from repro.train.trainer import TrainConfig, Trainer
from repro.utils.serialization import load_state, save_state
from repro.utils.tabulate import format_table


@dataclass
class ExperimentResult:
    """Printable/serializable result of one experiment."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[object]]
    notes: List[str] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)
    charts: List[str] = field(default_factory=list)

    def table(self) -> str:
        text = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        for chart in self.charts:
            text += "\n\n" + chart
        return text

    def save(self, results_dir: str) -> str:
        os.makedirs(results_dir, exist_ok=True)
        path = os.path.join(results_dir, f"{self.experiment_id}.json")
        payload = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": self.headers,
            "rows": self.rows,
            "notes": self.notes,
            "extras": self.extras,
        }
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, default=_jsonable)
        return path


def _jsonable(value):
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serializable: {type(value)}")


class Workbench:
    """Builds, trains and caches the models the experiments share.

    ``jobs`` is the worker-process count the sweep engine
    (:func:`repro.parallel.sweep_map`) uses when an experiment fans its
    grid points out; ``1`` (the default) keeps every experiment on the
    historical serial path, bit for bit.
    """

    def __init__(self, config: ExperimentConfig, jobs: int = 1):
        self.config = config
        self.jobs = jobs
        self._data: Optional[SynthImageNet] = None
        self._accuracy_cache: Dict[str, dict] = {}

    # ------------------------------------------------------------------
    # data
    # ------------------------------------------------------------------
    @property
    def data(self) -> SynthImageNet:
        if self._data is None:
            cfg = self.config
            self._data = SynthImageNet(
                SynthImageNetConfig(
                    num_classes=cfg.num_classes,
                    image_size=cfg.image_size,
                    train_per_class=cfg.train_per_class,
                    val_per_class=cfg.val_per_class,
                    distractor_mix=cfg.distractor_mix,
                    noise_std=cfg.noise_std,
                    seed=cfg.seed,
                )
            )
        return self._data

    # ------------------------------------------------------------------
    # model builders
    # ------------------------------------------------------------------
    def _finish(self, model: ResNet) -> ResNet:
        """Post-construction calibration shared by all variants."""
        if isinstance(model.input_adapter, InputQuantizer):
            model.input_adapter.calibrate(self.data.train.images)
        return model

    def build_fp32(self) -> ResNet:
        return self._finish(
            resnet_small(
                FP32Factory(seed=self.config.seed + 1),
                num_classes=self.config.num_classes,
            )
        )

    def build_quantized(self, bw: int, bx: int) -> ResNet:
        return self._finish(
            resnet_small(
                DoReFaFactory(QuantConfig(bw, bx), seed=self.config.seed + 1),
                num_classes=self.config.num_classes,
            )
        )

    def build_ams(
        self,
        enob: float,
        nmult: Optional[int] = None,
        bw: int = 8,
        bx: int = 8,
        inject_last_in_training: bool = False,
        with_probes: bool = False,
        noise_tag: str = "",
    ) -> ResNet:
        nmult = nmult or self.config.nmult
        noise_seed = zlib.crc32(
            f"{self.config.seed}-{enob}-{nmult}-{noise_tag}".encode()
        )
        factory = AMSFactory(
            QuantConfig(bw, bx),
            VMACConfig(enob=enob, nmult=nmult, bw=bw, bx=bx),
            seed=self.config.seed + 1,
            noise_seed=noise_seed,
            inject_last_in_training=inject_last_in_training,
            with_probes=with_probes,
        )
        return self._finish(
            resnet_small(factory, num_classes=self.config.num_classes)
        )

    # ------------------------------------------------------------------
    # cached training
    # ------------------------------------------------------------------
    def _cache_base(self, name: str) -> str:
        os.makedirs(self.config.cache_dir, exist_ok=True)
        return os.path.join(
            self.config.cache_dir, f"{self.config.cache_key_prefix()}-{name}"
        )

    def _train_cached(
        self,
        name: str,
        build: Callable[[], ResNet],
        train_config: TrainConfig,
        init_state: Optional[dict] = None,
        freeze: Sequence[str] = (),
    ) -> Tuple[ResNet, dict]:
        """Train-or-load a model by cache name.

        Returns ``(model_with_best_weights, metadata)`` where metadata
        records the best validation accuracy and training history.
        """
        base = self._cache_base(name)
        state_path = base + ".npz"
        meta_path = base + ".json"
        model = build()
        if os.path.exists(state_path) and os.path.exists(meta_path):
            model.load_state_dict(load_state(state_path))
            with open(meta_path) as fh:
                meta = json.load(fh)
            return model, meta

        if init_state is not None:
            model.load_state_dict(init_state)
        if freeze:
            freeze_layers(model, freeze)
        result = Trainer(train_config).fit(
            model, self.data.train, self.data.val
        )
        meta = {
            "name": name,
            "best_accuracy": result.best_accuracy,
            "best_epoch": result.best_epoch,
            "epochs_run": result.epochs_run,
            "stopped_early": result.stopped_early,
            "history": result.history,
        }
        # Write-then-rename so a cache file is either absent or complete:
        # sweep workers sharing cache_dir must never load a partial
        # checkpoint.  The tmp name is pid-unique, so even two processes
        # redundantly training the same artifact cannot corrupt it.
        tmp_state = f"{base}.tmp{os.getpid()}.npz"
        tmp_meta = f"{base}.tmp{os.getpid()}.json"
        save_state(tmp_state, model.state_dict())
        with open(tmp_meta, "w") as fh:
            json.dump(meta, fh, indent=2)
        os.replace(tmp_state, state_path)
        os.replace(tmp_meta, meta_path)
        return model, meta

    def _pretrain_config(self) -> TrainConfig:
        cfg = self.config
        return TrainConfig(
            epochs=cfg.pretrain_epochs,
            batch_size=cfg.batch_size,
            lr=cfg.lr,
            patience=cfg.patience,
            shuffle_seed=cfg.seed + 7,
        )

    def _retrain_config(self) -> TrainConfig:
        cfg = self.config
        return TrainConfig(
            epochs=cfg.retrain_epochs,
            batch_size=cfg.batch_size,
            lr=cfg.retrain_lr,
            patience=cfg.patience,
            shuffle_seed=cfg.seed + 8,
        )

    # ------------------------------------------------------------------
    # the shared artifacts
    # ------------------------------------------------------------------
    def fp32_model(self) -> Tuple[ResNet, dict]:
        """The pretrained FP32 baseline (paper: pretrained ResNet-50)."""
        return self._train_cached(
            "fp32", self.build_fp32, self._pretrain_config()
        )

    def quantized_model(self, bw: int, bx: int) -> Tuple[ResNet, dict]:
        """DoReFa-retrained network at (bw, bx), started from FP32.

        Trained with a doubled epoch budget (early stopping still
        applies) so the baseline is at convergence — otherwise AMS
        retraining at high ENOB would beat the baseline merely by
        training longer, inverting the paper's Fig. 4 high-ENOB
        behaviour.
        """
        from dataclasses import replace as dc_replace

        fp32, _ = self.fp32_model()
        retrain = self._retrain_config()
        retrain = dc_replace(retrain, epochs=retrain.epochs * 2)
        return self._train_cached(
            f"quant-bw{bw}-bx{bx}",
            lambda: self.build_quantized(bw, bx),
            retrain,
            init_state=fp32.state_dict(),
        )

    def ams_retrained(
        self,
        enob: float,
        nmult: Optional[int] = None,
        bw: int = 8,
        bx: int = 8,
        freeze: Sequence[str] = (),
        inject_last_in_training: bool = False,
    ) -> Tuple[ResNet, dict]:
        """AMS-error-in-the-loop retraining from the quantized baseline."""
        quant, _ = self.quantized_model(bw, bx)
        freeze_tag = "".join(sorted(freeze)) if freeze else "none"
        last_tag = "-lastinj" if inject_last_in_training else ""
        name = (
            f"ams-e{enob}-n{nmult or self.config.nmult}-bw{bw}-bx{bx}"
            f"-f{freeze_tag}{last_tag}"
        )
        return self._train_cached(
            name,
            lambda: self.build_ams(
                enob,
                nmult,
                bw,
                bx,
                inject_last_in_training=inject_last_in_training,
            ),
            self._retrain_config(),
            init_state=quant.state_dict(),
            freeze=freeze,
        )

    def ams_eval_only(
        self, enob: float, nmult: Optional[int] = None, bw: int = 8, bx: int = 8
    ) -> ResNet:
        """Quantized baseline weights evaluated with AMS error injected.

        Matches the paper's "AMS error in eval only" series: no
        retraining, the best epoch of the quantized retrained network.
        """
        quant, _ = self.quantized_model(bw, bx)
        model = self.build_ams(enob, nmult, bw, bx, noise_tag="evalonly")
        model.load_state_dict(quant.state_dict())
        return model

    # ------------------------------------------------------------------
    # probed rebuilds (Fig. 6): same weights, instrumented layers
    # ------------------------------------------------------------------
    def build_fp32_probed(self) -> ResNet:
        """The trained FP32 baseline rebuilt with activation probes."""
        trained, _ = self.fp32_model()
        model = self._finish(
            resnet_small(
                FP32Factory(seed=self.config.seed + 1, with_probes=True),
                num_classes=self.config.num_classes,
            )
        )
        model.load_state_dict(trained.state_dict())
        return model

    def build_quantized_probed(self, bw: int, bx: int) -> ResNet:
        """A trained quantized baseline rebuilt with activation probes."""
        trained, _ = self.quantized_model(bw, bx)
        model = self._finish(
            resnet_small(
                DoReFaFactory(
                    QuantConfig(bw, bx),
                    seed=self.config.seed + 1,
                    with_probes=True,
                ),
                num_classes=self.config.num_classes,
            )
        )
        model.load_state_dict(trained.state_dict())
        return model

    def ams_retrained_probed(
        self, enob: float, nmult: Optional[int] = None
    ) -> ResNet:
        """An AMS-retrained model rebuilt with activation probes."""
        trained, _ = self.ams_retrained(enob, nmult)
        model = self.build_ams(enob, nmult, with_probes=True)
        model.load_state_dict(trained.state_dict())
        return model

    # ------------------------------------------------------------------
    def stats(self, model: Module) -> EvalStats:
        """The paper's reporting protocol on the validation split."""
        return repeated_evaluate(
            model,
            self.data.val,
            passes=self.config.eval_passes,
            batch_size=self.config.batch_size,
        )
