"""Heterogeneous ENOB allocation (extension of the Fig. 8 use case).

The paper offers Fig. 8 "as a lookup table by circuit designers."  A
natural next design choice it enables is *heterogeneous* resolution:
layers differ in MAC count (energy weight) and in ``Ntot`` (error
weight, Eq. 2), so per-layer ENOBs can beat a uniform assignment.

The experiment surfaces a finding the total-variance math hides:
**sensitivity matters**.  Allocating under a naive equal-total-variance
budget strips bits from small layers — above all the classifier head —
whose per-output error then explodes, destroying accuracy even though
the summed variance matches the uniform design.  Weighting each layer's
variance by ``1/outputs`` (i.e. budgeting *per-activation* noise)
repairs the allocation.  Three assignments are therefore measured on
the real network at the same nominal noise budget:

1. uniform ENOB (the paper's setting);
2. naive allocation (sensitivity = 1, the broken proxy);
3. per-activation allocation (sensitivity = 1/outputs).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence

from repro.ams.allocation import (
    LayerBudget,
    allocation_energy,
    allocation_variance,
    greedy_allocation,
    set_layer_enobs,
    uniform_energy,
    uniform_variance,
)
from repro.ams.models import AMSErrorInjector
from repro.energy.network import profile_network
from repro.errors import ConfigError
from repro.experiments.common import ExperimentResult, Workbench
from repro.parallel import Artifact, SweepPoint, sweep_map
from repro.serve.spec import ModelSpec

EXPERIMENT_ID = "alloc"
TITLE = "Per-layer ENOB allocation vs uniform (equal noise budget)"

ARTIFACTS = {
    "fp32": Artifact(
        "fp32", lambda b: b.registry.get(ModelSpec("fp32"), fresh=True)
    ),
    "quant-8-8": Artifact(
        "quant-8-8",
        lambda b: b.registry.get(ModelSpec("quant", bw=8, bx=8), fresh=True),
        deps=("fp32",),
    ),
}


def _layer_budgets(bench: Workbench) -> List[LayerBudget]:
    """Profiles of the experiment network's compute layers."""
    model, _ = bench.registry.get(ModelSpec("quant", bw=8, bx=8), fresh=True)
    cfg = bench.config
    shape = (1, 3, cfg.image_size, cfg.image_size)
    return [
        LayerBudget(name=p.name, ntot=p.ntot, outputs=p.outputs)
        for p in profile_network(model, shape)
    ]


def _measure(bench: Workbench, layers, enobs: Dict[str, float]) -> float:
    """Accuracy of the quantized net with per-layer ENOB injection."""
    quant, _ = bench.registry.get(ModelSpec("quant", bw=8, bx=8), fresh=True)
    model = bench.build(
        ModelSpec("ams", enob=bench.config.table2_enob), noise_tag="alloc"
    )
    model.load_state_dict(quant.state_dict())
    injectors = [
        m for m in model.modules() if isinstance(m, AMSErrorInjector)
    ]
    ordered = _match_enobs_to_injectors(layers, enobs, injectors)
    set_layer_enobs(model, ordered)
    return bench.stats(model).mean


def _sens_point(
    bench: Workbench, index: int, probe_enob: float, n_layers: int
) -> float:
    """Accuracy with noise injected into layer ``index`` only."""
    quant, _ = bench.registry.get(ModelSpec("quant", bw=8, bx=8), fresh=True)
    model = bench.build(
        ModelSpec("ams", enob=probe_enob), noise_tag=f"sens{index}"
    )
    model.load_state_dict(quant.state_dict())
    enobs = [16.0] * n_layers
    enobs[index] = probe_enob
    set_layer_enobs(model, enobs)
    return bench.stats(model).mean


def _empirical_sensitivities(
    bench: Workbench, layers: Sequence[LayerBudget], probe_enob: float
) -> List[float]:
    """Measured accuracy harm per unit of injected variance, per layer.

    For each layer in turn, inject noise into *only that layer* (all
    others effectively noiseless at ENOB 16) and record the accuracy
    drop; sensitivity is drop / injected variance.  This captures what
    the analytic proxies cannot: noise at the classifier reaches the
    logits unattenuated, while conv noise is largely absorbed by batch
    norm and pooling.

    The per-layer probes are independent, so they fan out through
    :func:`~repro.parallel.sweep_map` when ``bench.jobs > 1``.
    """
    base = bench.stats(
        bench.registry.get(ModelSpec("ams_eval", enob=16.0), fresh=True)[0]
    ).mean
    points = [
        SweepPoint(
            key=layer.name,
            args=(index, probe_enob, len(layers)),
            requires=("quant-8-8",),
        )
        for index, layer in enumerate(layers)
    ]
    accuracies = sweep_map(bench, _sens_point, points, ARTIFACTS)
    sensitivities = []
    for layer, accuracy in zip(layers, accuracies):
        drop = max(base - accuracy, 0.0)
        variance = layer.error_variance(probe_enob, bench.config.nmult)
        sensitivities.append(max(drop, 1e-4) / variance)
    return sensitivities


def run(bench: Workbench) -> ExperimentResult:
    cfg = bench.config
    enob = cfg.table2_enob
    nmult = cfg.nmult
    layers = _layer_budgets(bench)

    naive_budget = uniform_variance(layers, enob, nmult)
    base_energy = uniform_energy(layers, enob, nmult)
    naive = greedy_allocation(layers, nmult, naive_budget)

    # Per-activation sensitivity: budget the *average* per-output noise.
    pa_layers = [
        replace(layer, sensitivity=1.0 / layer.outputs) for layer in layers
    ]
    pa_budget = uniform_variance(pa_layers, enob, nmult)
    per_activation = greedy_allocation(pa_layers, nmult, pa_budget)

    # Empirical sensitivity: measure each layer's actual harm per unit
    # variance and budget the *predicted accuracy loss* of uniform.
    sens = _empirical_sensitivities(bench, layers, enob)
    emp_layers = [
        replace(layer, sensitivity=s) for layer, s in zip(layers, sens)
    ]
    emp_budget = uniform_variance(emp_layers, enob, nmult)
    empirical = greedy_allocation(emp_layers, nmult, emp_budget)

    rows = []
    for layer, s in zip(layers, sens):
        rows.append(
            [
                layer.name,
                layer.ntot,
                enob,
                round(naive[layer.name], 2),
                round(per_activation[layer.name], 2),
                round(empirical[layer.name], 2),
                f"{s:.2e}",
            ]
        )

    uniform_acc = bench.stats(
        bench.registry.get(ModelSpec("ams_eval", enob=enob), fresh=True)[0]
    ).mean
    naive_acc = _measure(bench, layers, naive)
    pa_acc = _measure(bench, layers, per_activation)
    emp_acc = _measure(bench, layers, empirical)

    notes = [
        f"uniform: ENOB={enob} everywhere; accuracy {uniform_acc:.4f}; "
        f"energy {base_energy/1e3:.1f} nJ/inference",
        f"naive equal-total-variance allocation: accuracy {naive_acc:.4f} "
        "— collapses because the proxy strips the classifier head "
        "(sensitivity blindness)",
        f"per-activation allocation: accuracy {pa_acc:.4f} — better, "
        "still blind to BN attenuation vs logit exposure",
        f"empirical-sensitivity allocation: accuracy {emp_acc:.4f} at "
        f"energy {allocation_energy(layers, empirical, nmult)/1e3:.1f} "
        "nJ/inference — sensitivity measured by single-layer injection",
        "finding: Eq. 2 prices error per layer, but accuracy harm per "
        "unit variance spans orders of magnitude across layers; "
        "allocation needs measured sensitivities",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "Layer", "Ntot", "uniform", "naive", "per-act", "empirical",
            "sens",
        ],
        rows=rows,
        notes=notes,
        extras={
            "uniform_accuracy": uniform_acc,
            "naive_accuracy": naive_acc,
            "per_activation_accuracy": pa_acc,
            "empirical_accuracy": emp_acc,
            "uniform_energy_pj": base_energy,
            "sensitivities": sens,
            "naive": naive,
            "per_activation": per_activation,
            "empirical": empirical,
        },
    )


def _match_enobs_to_injectors(
    layers: Sequence[LayerBudget],
    allocation: Dict[str, float],
    injectors: Sequence[AMSErrorInjector],
) -> List[float]:
    """Order per-layer ENOBs to match the model's injector sequence.

    Both the profiler and the injector walk follow module-definition
    order, so positions correspond 1:1; ntot values are checked to
    guard against drift.
    """
    if len(layers) != len(injectors):
        raise ConfigError(
            f"{len(layers)} profiled layers vs {len(injectors)} injectors"
        )
    ordered = []
    for layer, injector in zip(layers, injectors):
        if layer.ntot != injector.ntot:
            raise ConfigError(
                f"profile/injector mismatch at {layer.name}: "
                f"ntot {layer.ntot} vs {injector.ntot}"
            )
        ordered.append(allocation[layer.name])
    return ordered
