"""Section-4 extensions and error-model ablations.

Four studies the paper proposes but does not fully evaluate:

- ``abl-tiled``: lumped Gaussian injection vs per-VMAC quantization —
  both the layer-level error statistics (does the Eq. 2 Gaussian match
  the real tiled error?) and network accuracy under each model.
- ``abl-recycle``: delta-sigma error recycling across VMAC cycles
  ("reduces the total incurred quantization error").
- ``abl-partition``: long-multiplication operand partitioning — error
  and energy vs the unpartitioned VMAC.
- ``abl-vref``: ADC reference scaling on *measured* partial-sum
  distributions ("network- and data-dependent").
"""

from __future__ import annotations

import numpy as np

from repro.ams.partitioning import (
    PartitionScheme,
    equivalent_unpartitioned_enob,
    partitioned_energy,
    partitioned_error_std,
)
from repro.ams.recycling import recycling_error_reduction
from repro.ams.reference_scaling import best_alpha, reference_scaling_sweep
from repro.ams.tiled import tile_quantized_convs, tiled_vmac_dot
from repro.ams.vmac import VMACConfig, total_error_std
from repro.energy.adc import adc_energy
from repro.energy.emac import emac
from repro.experiments.common import ExperimentResult, Workbench
from repro.serve.spec import ModelSpec
from repro.tensor.im2col import im2col

EXPERIMENT_ID = "ablations"
TITLE = "Section-4 extensions: tiled model, recycling, partitioning, Vref"


def _sample_layer(bench: Workbench):
    """Real (cols, weights) from the first hidden conv of the 8b net.

    Gives the data-dependent inputs the Vref / tiled studies need:
    activation patches in [0, 1] and DoReFa weights in [-1, 1].
    """
    model, _ = bench.registry.get(ModelSpec("quant", bw=8, bx=8), fresh=True)
    model.eval()
    images = bench.data.val.images[:64]
    from repro.tensor.tensor import Tensor, no_grad

    # Forward through input adapter + stem to get realistic activations.
    with no_grad():
        x = model.input_adapter(Tensor(images))
        stem = model.stem_act(model.stem_bn(model.stem_conv(x)))
    block = model.blocks[0]
    conv = block.conv1[0]  # QuantConv2d
    acts = stem.data
    cols = im2col(acts, conv.kernel_size, (1, 1), (1, 1))
    w_mat = conv.quantized_weight().data.reshape(conv.out_channels, -1)
    return cols, w_mat


def run(bench: Workbench) -> ExperimentResult:
    cfg = bench.config
    nmult = cfg.nmult
    enob = cfg.table2_enob
    rows = []
    extras = {}

    # ------------------------------------------------------------- tiled
    cols, w_mat = _sample_layer(bench)
    ideal = cols @ w_mat.T
    tiled = tiled_vmac_dot(cols, w_mat, VMACConfig(enob=enob, nmult=nmult))
    actual_rms = float(np.sqrt(np.mean((tiled - ideal) ** 2)))
    predicted = total_error_std(enob, nmult, cols.shape[1])
    rows.append(
        ["tiled: layer error RMS (measured vs Eq.2)", actual_rms, predicted]
    )
    extras["tiled_rms_ratio"] = actual_rms / predicted

    model, _ = bench.registry.get(ModelSpec("quant", bw=8, bx=8), fresh=True)
    base_acc = bench.stats(model).mean
    lumped, _ = bench.registry.get(
        ModelSpec("ams_eval", enob=enob), fresh=True
    )
    lumped_acc = bench.stats(lumped).mean
    tiled_model, _ = bench.registry.get(
        ModelSpec("quant", bw=8, bx=8), fresh=True
    )
    tile_quantized_convs(
        tiled_model, VMACConfig(enob=enob, nmult=nmult), seed=cfg.seed
    )
    tiled_acc = bench.stats(tiled_model).mean
    rows.append(
        ["tiled: net accuracy loss (lumped vs tiled)",
         base_acc - lumped_acc, base_acc - tiled_acc]
    )
    extras["lumped_loss"] = base_acc - lumped_acc
    extras["tiled_loss"] = base_acc - tiled_acc

    # ---------------------------------------------------------- recycling
    rng = np.random.default_rng(cfg.seed + 77)
    ntot = cols.shape[1]
    cycles = max(ntot // nmult, 2)
    sample_rows = rng.choice(len(cols), size=min(512, len(cols)), replace=False)
    partials = np.stack(
        [
            cols[sample_rows, k * nmult : (k + 1) * nmult]
            @ w_mat[0, k * nmult : (k + 1) * nmult]
            for k in range(cycles)
        ],
        axis=-1,
    )
    recycle = recycling_error_reduction(partials, enob, nmult)
    rows.append(
        ["recycling: RMS error (plain vs recycled)",
         recycle["rms_plain"], recycle["rms_recycled"]]
    )
    extras["recycling"] = recycle

    # -------------------------------------------------------- partitioning
    base_cfg = VMACConfig(enob=enob, nmult=nmult, bw=8, bx=8)
    unpart_std = total_error_std(enob, nmult, ntot)
    unpart_energy = emac(enob, nmult)
    part_rows = []
    for nw, nx, penob in ((1, 1, enob), (2, 2, enob - 2), (2, 2, enob - 3)):
        scheme = PartitionScheme(
            VMACConfig(enob=penob, nmult=nmult, bw=8, bx=8), nw=nw, nx=nx
        )
        std = partitioned_error_std(scheme, ntot)
        energy = partitioned_energy(scheme, adc_energy)
        eq = equivalent_unpartitioned_enob(scheme, ntot)
        part_rows.append(
            {
                "nw": nw,
                "nx": nx,
                "partial_enob": penob,
                "error_std": std,
                "emac_pj": energy,
                "equivalent_enob": eq,
            }
        )
        rows.append(
            [f"partition {nw}x{nx} @ {penob}b: std / E_MAC[pJ]", std, energy]
        )
    rows.append(
        ["unpartitioned baseline: std / E_MAC[pJ]", unpart_std, unpart_energy]
    )
    extras["partitioning"] = part_rows

    # ------------------------------------------------- last-layer workaround
    # Paper: "injecting AMS error into the last layer while training led
    # to a loss of the network's ability to learn, and this workaround
    # provides a working solution."
    normal, meta_normal = bench.registry.get(
        ModelSpec("ams", enob=enob), fresh=True
    )
    injected, meta_injected = bench.registry.get(
        ModelSpec("ams", enob=enob, inject_last_in_training=True),
        fresh=True,
    )
    rows.append(
        [
            "last-layer train injection: best acc (workaround vs injected)",
            meta_normal["best_accuracy"],
            meta_injected["best_accuracy"],
        ]
    )
    extras["lastlayer_workaround_acc"] = meta_normal["best_accuracy"]
    extras["lastlayer_injected_acc"] = meta_injected["best_accuracy"]

    # ---------------------------------------------------------------- vref
    partial_samples = np.stack(
        [
            cols[:, k * nmult : (k + 1) * nmult]
            @ w_mat[:, k * nmult : (k + 1) * nmult].T
            for k in range(cycles)
        ]
    )
    sweep = reference_scaling_sweep(partial_samples, enob, nmult)
    best = best_alpha(sweep)
    for point in sweep:
        rows.append(
            [f"vref alpha={point.alpha}: RMS / clip frac",
             point.rms_error, point.clip_fraction]
        )
    extras["vref_best_alpha"] = best.alpha
    extras["vref_best_rms"] = best.rms_error

    notes = [
        f"all studies at ENOB={enob}, Nmult={nmult}, layer Ntot={ntot}",
        f"tiled/lumped RMS ratio {extras['tiled_rms_ratio']:.3f} "
        "(~1 validates the Eq. 2 Gaussian abstraction)",
        f"recycling reduces RMS by {recycle['reduction_factor']:.2f}x "
        f"over {cycles} cycles",
        "last-layer injection during training costs "
        f"{meta_normal['best_accuracy'] - meta_injected['best_accuracy']:+.4f} "
        "here — the paper's 'destroys learning' failure is "
        "ImageNet-scale-specific (1000-way logits drown in noise; our "
        "20-way logits survive), documented in EXPERIMENTS.md",
        f"best Vref alpha = {best.alpha} "
        "(alpha < 1 wins when partial sums concentrate near zero)",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["Study / quantity", "Value A", "Value B"],
        rows=rows,
        notes=notes,
        extras=extras,
    )
