"""Figure 6: activation means at conv outputs under AMS retraining.

The paper saves "activation means at the output of every convolutional
layer (the location where AMS error is injected)" across the whole
validation set for six network variants — FP32, 8b quantized, and AMS
retrained at several noise levels — and finds that "in 43 of the 53
convolutional layers ... the network appears to learn to push the means
of the activations away from zero to combat added AMS noise; moreover,
the larger the noise, the greater the push."

The reproduction instruments every conv with a probe, measures the mean
over the validation set for each variant, and reports (a) a
representative layer's means next to the injected error std, and (b)
the fraction of layers whose |mean| grows monotonically-in-trend with
the noise level.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.experiments.common import ExperimentResult, Workbench
from repro.train.evaluate import evaluate_accuracy
from repro.train.hooks import collect_probes, set_probes_enabled

EXPERIMENT_ID = "fig6"
TITLE = "Fig. 6: conv-output activation means across network variants"


def _measure_means(bench: Workbench, model) -> Dict[str, float]:
    """Run the validation set through ``model``; return probe means."""
    set_probes_enabled(model, True)
    evaluate_accuracy(model, bench.data.val, bench.config.batch_size)
    means = {p.label: p.mean for p in collect_probes(model)}
    set_probes_enabled(model, False)
    return means


def run(bench: Workbench) -> ExperimentResult:
    cfg = bench.config

    variants: List[tuple] = []  # (label, means dict, error std marker)
    fp32_probed = bench.build_fp32_probed()
    variants.append(("FP32", _measure_means(bench, fp32_probed), 0.0))

    quant_probed = bench.build_quantized_probed(8, 8)
    variants.append(("Quantized 8b", _measure_means(bench, quant_probed), 0.0))

    ams_stds = {}
    for enob in cfg.fig6_enobs:
        model = bench.ams_retrained_probed(enob)
        means = _measure_means(bench, model)
        # Error std of a mid-network conv (ntot = 144 for width-16 3x3).
        from repro.ams.vmac import total_error_std

        std = total_error_std(enob, cfg.nmult, 16 * 9)
        ams_stds[enob] = std
        variants.append((f"AMS {enob}b", means, std))

    labels = sorted(
        variants[0][1],
        key=lambda s: (s != "fc", int(s[4:]) if s.startswith("conv") else 0),
    )
    conv_labels = [l for l in labels if l.startswith("conv")]

    rows = []
    for label in labels:
        rows.append(
            [label] + [round(means.get(label, 0.0), 4) for _, means, _ in variants]
        )

    pushed = _count_pushed_layers(conv_labels, variants)
    notes = [
        "columns: " + ", ".join(v[0] for v in variants),
        "AMS error std at a width-16 conv: "
        + ", ".join(f"{e}b={s:.3f}" for e, s in ams_stds.items()),
        f"layers where |mean| increases with AMS noise (trend): "
        f"{pushed}/{len(conv_labels)} "
        "(paper: 43/53 — means pushed away from zero)",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["Layer"] + [v[0] for v in variants],
        rows=rows,
        notes=notes,
        extras={
            "pushed_layers": pushed,
            "total_conv_layers": len(conv_labels),
            "ams_error_stds": {str(k): v for k, v in ams_stds.items()},
        },
    )


def _count_pushed_layers(conv_labels, variants) -> int:
    """Layers whose |mean| trends up from the quantized net to high noise.

    'Trend' = positive slope of |mean| regressed on the noise index,
    comparing the quantized baseline (index 0) and each AMS variant in
    increasing-noise order (decreasing ENOB = increasing noise).
    """
    # variants: FP32, quant, AMS enob ascending (noise DEscending).
    quant_means = variants[1][1]
    ams = variants[2:]
    # increasing noise = reversed ENOB order
    ordered = list(reversed(ams))
    pushed = 0
    for label in conv_labels:
        series = [abs(quant_means[label])] + [
            abs(means[label]) for _, means, _ in ordered
        ]
        x = np.arange(len(series), dtype=float)
        slope = np.polyfit(x, np.asarray(series), 1)[0]
        if slope > 0:
            pushed += 1
    return pushed
