"""Deterministic random-number management.

Every stochastic component in the repo (weight init, data generation,
AMS noise sampling, batch shuffling) takes an explicit
``numpy.random.Generator``.  These helpers create and fan out
generators so a single experiment seed reproduces an entire run.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np


def new_rng(
    seed: Union[int, np.random.SeedSequence]
) -> np.random.Generator:
    """A fresh PCG64 generator for ``seed`` (an int or a SeedSequence)."""
    return np.random.default_rng(seed)


def entropy_rng() -> np.random.Generator:
    """A generator seeded from OS entropy (non-reproducible paths only).

    The single sanctioned way to get an unseeded stream in seeded
    subsystems — ``tools/errmodel_lint.py`` forbids bare ``np.random``
    calls under ``repro/ams/``, so explicitly-unseeded defaults route
    through here and stay greppable.
    """
    return np.random.default_rng()


def seed_sequence(seed: int) -> np.random.SeedSequence:
    """The ``SeedSequence`` for ``seed`` (spawn children for substreams)."""
    return np.random.SeedSequence(seed)


def spawn_rngs(seed: int, count: int) -> List[np.random.Generator]:
    """``count`` independent generators derived from one seed.

    Uses ``SeedSequence.spawn`` so the streams are statistically
    independent (unlike ``seed+i`` arithmetic).
    """
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def point_seed_sequence(seed: int, index: int) -> np.random.SeedSequence:
    """The seed sequence for grid point ``index`` of a sweep.

    Keyed by ``spawn_key`` so the stream depends only on ``(seed,
    index)`` — never on execution order or worker assignment — which is
    what makes parallel sweeps reproduce serial ones exactly.  The
    returned sequence can itself be ``spawn``\\ n for per-layer streams
    within the point.
    """
    return np.random.SeedSequence(seed, spawn_key=(index,))


def rng_for_point(seed: int, index: int) -> np.random.Generator:
    """A generator for grid point ``index``, independent of its siblings."""
    return np.random.default_rng(point_seed_sequence(seed, index))
