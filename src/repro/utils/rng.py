"""Deterministic random-number management.

Every stochastic component in the repo (weight init, data generation,
AMS noise sampling, batch shuffling) takes an explicit
``numpy.random.Generator``.  These helpers create and fan out
generators so a single experiment seed reproduces an entire run.
"""

from __future__ import annotations

from typing import List

import numpy as np


def new_rng(seed: int) -> np.random.Generator:
    """A fresh PCG64 generator for ``seed``."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> List[np.random.Generator]:
    """``count`` independent generators derived from one seed.

    Uses ``SeedSequence.spawn`` so the streams are statistically
    independent (unlike ``seed+i`` arithmetic).
    """
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
