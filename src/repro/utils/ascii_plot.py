"""Terminal line charts for the experiment harnesses.

The paper's Figs. 4 and 5 are line plots of accuracy loss vs ENOB; the
harness renders the same series as an ASCII chart so the figure's shape
is visible directly in the terminal (and in CI logs) without any
plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import ConfigError

_MARKERS = "ox+*#@"


def ascii_chart(
    x: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 14,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named y-series over shared x values as an ASCII chart.

    Each series gets a marker (legend printed underneath); points are
    plotted on a ``width`` x ``height`` character grid with linear axes
    spanning the data range.
    """
    if not x or not series:
        raise ConfigError("need x values and at least one series")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ConfigError(
                f"series {name!r} has {len(ys)} points for {len(x)} x values"
            )
    x_min, x_max = min(x), max(x)
    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, (name, ys) in zip(_MARKERS, series.items()):
        for xv, yv in zip(x, ys):
            col = int(round((xv - x_min) / x_span * (width - 1)))
            row = int(round((yv - y_min) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if y_label:
        lines.append(y_label)
    top = f"{y_max:.4g}"
    bottom = f"{y_min:.4g}"
    label_width = max(len(top), len(bottom))
    for i, row_chars in enumerate(grid):
        if i == 0:
            label = top.rjust(label_width)
        elif i == height - 1:
            label = bottom.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row_chars)}")
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    x_axis = (
        " " * label_width
        + "  "
        + f"{x_min:.4g}".ljust(width - len(f"{x_max:.4g}"))
        + f"{x_max:.4g}"
    )
    lines.append(x_axis)
    if x_label:
        lines.append(" " * (label_width + 2) + x_label)
    legend = "   ".join(
        f"{marker} {name}" for marker, name in zip(_MARKERS, series)
    )
    lines.append(legend)
    return "\n".join(lines)
