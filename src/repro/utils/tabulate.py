"""Minimal ASCII table formatting for experiment harness output.

The harness prints the same rows the paper's tables report; this keeps
the output readable without pulling in external dependencies.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render headers + rows as a fixed-width text table."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    rule = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    parts = []
    if title:
        parts.append(title)
    parts.extend([rule, line(list(headers)), rule])
    parts.extend(line(row) for row in str_rows)
    parts.append(rule)
    return "\n".join(parts)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)
