"""Shared utilities: deterministic RNG, atomic I/O, text tables."""

from repro.utils.rng import new_rng, spawn_rngs
from repro.utils.serialization import (
    atomic_write,
    atomic_write_json,
    load_state,
    normalize_npz_path,
    save_state,
)
from repro.utils.tabulate import format_table

__all__ = [
    "atomic_write",
    "atomic_write_json",
    "format_table",
    "load_state",
    "new_rng",
    "normalize_npz_path",
    "save_state",
    "spawn_rngs",
]
