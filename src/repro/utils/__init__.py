"""Shared utilities: deterministic RNG, checkpoints, text tables."""

from repro.utils.rng import new_rng, spawn_rngs
from repro.utils.serialization import save_state, load_state
from repro.utils.tabulate import format_table

__all__ = ["new_rng", "spawn_rngs", "save_state", "load_state", "format_table"]
