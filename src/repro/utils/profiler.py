"""Op-level wall-time and allocation profiler.

The sweep/kernel optimisations in this repo claim speedups; this module
is how they are *measured* instead of asserted.  Hot operators
(``conv2d`` forward/backward, ``im2col``/``col2im``, AMS noise
injection, optimizer steps, eval passes, train epochs) bracket their
work with :func:`op_start` / :func:`op_end`.  When no profiler is
active these helpers cost one attribute read and a ``None`` check —
the disabled overhead is bounded by ``benchmarks/test_bench_overhead.py``.

Times are *inclusive*: ``conv2d.forward`` contains the ``im2col`` time
of that call, like a flat sampling profiler's self+children column.
Allocation counts are deltas of the buffer-pool's fresh-allocation
counter over the op, so a steady-state op that reuses pooled buffers
reports 0.

Usage::

    from repro.utils import profiler

    with profiler.profiled() as prof:
        run_experiment(...)
    print(prof.report())

Block-level bracketing now lives in :func:`repro.obs.span`, which
forwards into the active profiler (so span names keep appearing as op
records); the old :func:`bracket` helper is a deprecated alias of it.
The raw ``op_start``/``op_end`` pair remains the supported primitive
for kernel-grade hot paths.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.tensor.pool import default_pool
from repro.utils.tabulate import format_table

#: The currently active profiler, or None (profiling disabled).
ACTIVE: Optional["Profiler"] = None


@dataclass
class OpRecord:
    """Aggregate statistics for one named operation."""

    calls: int = 0
    total_s: float = 0.0
    max_s: float = 0.0
    allocs: int = 0

    @property
    def mean_ms(self) -> float:
        return 1e3 * self.total_s / self.calls if self.calls else 0.0


class Profiler:
    """Accumulates per-op wall time and pool-allocation counts."""

    def __init__(self):
        self._records: Dict[str, OpRecord] = {}
        self._started = perf_counter()
        # Serving executes batches on several threads at once; record
        # updates are multi-field and must not interleave.
        self._lock = threading.Lock()
        stats = default_pool().stats
        self._pool_alloc0 = stats.allocations
        self._pool_hit0 = stats.hits

    def add(self, op: str, seconds: float, allocs: int = 0) -> None:
        with self._lock:
            record = self._records.get(op)
            if record is None:
                record = self._records[op] = OpRecord()
            record.calls += 1
            record.total_s += seconds
            record.allocs += allocs
            if seconds > record.max_s:
                record.max_s = seconds

    def merge(self, other: "Profiler") -> None:
        """Fold another profiler's records into this one.

        Used to aggregate per-worker profiles from a parallel sweep.
        """
        with self._lock:
            for op, record in other._records.items():
                mine = self._records.get(op)
                if mine is None:
                    mine = self._records[op] = OpRecord()
                mine.calls += record.calls
                mine.total_s += record.total_s
                mine.allocs += record.allocs
                if record.max_s > mine.max_s:
                    mine.max_s = record.max_s

    def records(self) -> Dict[str, OpRecord]:
        return dict(self._records)

    def rows(self) -> List[List[object]]:
        """Table rows sorted by total time, descending."""
        items = sorted(
            self._records.items(), key=lambda kv: -kv[1].total_s
        )
        return [
            [
                op,
                r.calls,
                round(r.total_s, 4),
                round(r.mean_ms, 3),
                round(1e3 * r.max_s, 3),
                r.allocs,
            ]
            for op, r in items
        ]

    def report(self) -> str:
        """Human-readable table of op timings + pool summary."""
        elapsed = perf_counter() - self._started
        stats = default_pool().stats
        allocs = stats.allocations - self._pool_alloc0
        hits = stats.hits - self._pool_hit0
        total_gets = allocs + hits
        reuse = (100.0 * hits / total_gets) if total_gets else 0.0
        table = format_table(
            ["op", "calls", "total s", "mean ms", "max ms", "allocs"],
            self.rows() or [["(no ops recorded)", 0, 0.0, 0.0, 0.0, 0]],
            title="op profile (inclusive wall time)",
        )
        return (
            table
            + f"\n  wall: {elapsed:.3f}s; pool: {allocs} fresh allocs, "
            f"{hits} reuses ({reuse:.1f}% reuse)"
        )


# ----------------------------------------------------------------------
# hot-path bracket helpers (near-free when disabled)
# ----------------------------------------------------------------------
def op_start() -> Optional[Tuple[float, int]]:
    """Begin timing an op; returns None instantly when profiling is off."""
    if ACTIVE is None:
        return None
    return (perf_counter(), default_pool().stats.allocations)


def op_end(token: Optional[Tuple[float, int]], op: str) -> None:
    """Finish timing an op started by :func:`op_start`."""
    if token is None or ACTIVE is None:
        return
    ACTIVE.add(
        op,
        perf_counter() - token[0],
        default_pool().stats.allocations - token[1],
    )


def bracket(op: str):
    """Deprecated: use :func:`repro.obs.span` instead.

    ``bracket`` was the with-statement form of
    :func:`op_start`/:func:`op_end`; trace spans subsume it (same op
    records under ``--profile-ops``, plus nesting and thread
    awareness).  This alias delegates to ``obs.span`` and emits one
    DeprecationWarning per process.
    """
    from repro.obs.deprecation import warn_once
    from repro.obs.trace import span

    warn_once(
        "profiler.bracket",
        "repro.utils.profiler.bracket() is deprecated; use "
        "repro.obs.span() — same profiler op records, plus trace "
        "nesting",
    )
    return span(op)


# ----------------------------------------------------------------------
# activation
# ----------------------------------------------------------------------
def enable() -> Profiler:
    """Install (and return) a fresh active profiler."""
    global ACTIVE
    ACTIVE = Profiler()
    return ACTIVE


def disable() -> Optional[Profiler]:
    """Deactivate profiling; returns the profiler that was active."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = None
    return previous


@contextlib.contextmanager
def profiled():
    """Profile the enclosed block; restores the previous profiler after."""
    global ACTIVE
    previous = ACTIVE
    prof = Profiler()
    ACTIVE = prof
    try:
        yield prof
    finally:
        ACTIVE = previous
