"""Checkpoint I/O for module state dicts (npz on disk)."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np


def save_state(path: str, state: Dict[str, np.ndarray]) -> None:
    """Write a state dict to ``path`` (npz).  Creates parent dirs."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    # npz keys cannot contain '/', but '.' is fine; store as-is.
    np.savez(path, **state)


def load_state(path: str) -> Dict[str, np.ndarray]:
    """Read a state dict written by :func:`save_state`."""
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}
