"""Crash-safe file I/O: atomic writes and state-dict checkpoints (npz).

Every durable artifact in the repo — workbench cache entries, journal
manifests and summaries, training checkpoints, sweep point results —
is written through :func:`atomic_write`, the one tmp/fsync/rename
primitive, so a file on disk is either absent or complete even across
power loss:

1. the payload is written to ``<path>.tmp<pid>`` (pid-unique, so two
   processes racing on the same artifact cannot corrupt each other),
2. the file is flushed and ``fsync``\\ ed (data reaches the device, not
   just the page cache),
3. ``os.replace`` atomically installs it at ``path``,
4. the parent directory is ``fsync``\\ ed so the rename itself is
   durable — without this a power loss can leave a zero-length
   "complete" file that poisons every later reader.
"""

from __future__ import annotations

import contextlib
import json
import os
from typing import Dict, Iterator

import numpy as np

from repro.errors import ConfigError


def fsync_dir(path: str) -> None:
    """Flush a directory's metadata (new entries / renames) to disk.

    A no-op on platforms where directories cannot be opened for fsync
    (e.g. Windows); durability there falls back to the OS's defaults.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@contextlib.contextmanager
def atomic_write(path: str, mode: str = "w") -> Iterator:
    """Yield a file handle whose contents appear at ``path`` atomically.

    The handle writes to a pid-unique temporary in the same directory;
    on clean exit the data is fsynced, renamed over ``path``, and the
    parent directory fsynced (see the module docstring).  On error the
    temporary is removed and ``path`` is untouched.  Parent directories
    are created as needed.
    """
    if "r" in mode or "a" in mode or "+" in mode:
        raise ConfigError(
            f"atomic_write requires a write-only mode, got {mode!r}"
        )
    parent = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(parent, exist_ok=True)
    tmp = f"{path}.tmp{os.getpid()}"
    fh = open(tmp, mode)
    try:
        yield fh
        fh.flush()
        os.fsync(fh.fileno())
    except BaseException:
        fh.close()
        with contextlib.suppress(OSError):
            os.remove(tmp)
        raise
    fh.close()
    os.replace(tmp, path)
    fsync_dir(parent)


def atomic_write_json(path: str, payload: dict, **dump_kwargs) -> None:
    """Atomically write ``payload`` as JSON (see :func:`atomic_write`)."""
    dump_kwargs.setdefault("indent", 2)
    with atomic_write(path, "w") as fh:
        json.dump(payload, fh, **dump_kwargs)
        fh.write("\n")


def normalize_npz_path(path: str, caller: str = "save_state") -> str:
    """Resolve the ``.npz`` suffix ``np.savez`` would silently append.

    Without this, ``save_state("ckpt")`` writes ``ckpt.npz`` while
    ``load_state("ckpt")`` looks for ``ckpt`` — a guaranteed
    ``FileNotFoundError``.  Suffix-less paths are normalized to
    ``<path>.npz`` in both directions; a conflicting extension (e.g.
    ``.json``) raises :class:`~repro.errors.ConfigError` instead of
    producing a surprise ``<path>.json.npz`` file.  The repo's own
    ``.ckpt`` checkpoint suffix is a stem, not a conflict: it
    normalizes to ``<path>.ckpt.npz``.
    """
    if path.endswith(".npz"):
        return path
    base = os.path.basename(path)
    root, ext = os.path.splitext(base)
    # A dotted *directory* or a dotfile is not an extension conflict,
    # and neither is our own checkpoint suffix.
    if ext == ".ckpt":
        return path + ".npz"
    if ext and root:
        raise ConfigError(
            f"{caller} path {path!r} has extension {ext!r}; checkpoint "
            "archives are .npz (pass a .npz or suffix-less path)"
        )
    return path + ".npz"


def save_state(path: str, state: Dict[str, np.ndarray]) -> None:
    """Atomically write a state dict to ``path`` (npz).

    Creates parent dirs; the write is crash-safe (tmp + fsync + rename
    + dir fsync), so concurrent readers — e.g. sweep workers sharing a
    cache directory — never observe a partial archive.
    """
    path = normalize_npz_path(path, caller="save_state")
    # npz keys cannot contain '/', but '.' is fine; store as-is.
    with atomic_write(path, "wb") as fh:
        np.savez(fh, **state)


def load_state(path: str) -> Dict[str, np.ndarray]:
    """Read a state dict written by :func:`save_state`."""
    path = normalize_npz_path(path, caller="load_state")
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}
