"""Process-wide metric registry: counters, gauges, histograms.

The registry is the single write path for operational telemetry.  It is
deliberately minimal so instrumented hot paths stay cheap:

- **zero dependencies** — no numpy on any code path here; values are
  plain ints/floats and percentile math is avoided (histograms hold
  fixed bucket counts, exact samples stay with the callers that need
  exact percentiles, e.g. :class:`repro.serve.stats.EngineStatsView`);
- **lock-protected** — every metric carries its own small lock; an
  ``inc`` is one acquire, matching what the old ``EngineStats`` paid;
- **labeled children** — ``registry.counter("serve.requests_executed",
  spec="quant:bw8:bx8")`` returns a child keyed by the sorted label
  items, so one logical metric fans out per model/spec/worker.

Metric names follow ``subsystem.noun_verb`` (see
``docs/observability.md``): the prefix names the subsystem that owns
the value (``serve``, ``train``, ``sweep``, ``compile``) and the
suffix says what was counted or measured.  Names are validated at
creation time so typos fail loudly once, not silently forever.
"""

from __future__ import annotations

import re
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

#: ``subsystem.noun_verb`` — lowercase dotted segments of word chars.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

#: Default histogram bucket upper bounds (seconds-ish scale); callers
#: measuring other units pass explicit buckets.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_suffix(items: LabelItems) -> str:
    if not items:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in items) + "}"


def parse_metric_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Split a flat snapshot key ``name{a=b,c=d}`` into ``(name, labels)``.

    The inverse of the ``snapshot()`` key format; ``obs summary`` and
    :meth:`MetricRegistry.merge_snapshot` both round-trip through it.
    """
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels = {}
    for item in rest.rstrip("}").split(","):
        if item:
            label, _, value = item.partition("=")
            labels[label] = value
    return name, labels


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self):
        return self._value


class Gauge:
    """A value that goes up and down (queue depth, last loss)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self):
        return self._value


class Histogram:
    """Fixed-bucket distribution of observed values.

    ``buckets`` are inclusive upper bounds; one overflow bucket catches
    everything beyond the last bound.  Bucket counts plus ``sum`` and
    ``count`` are enough for mean and coarse quantiles without keeping
    samples — the registry never grows with traffic.
    """

    __slots__ = ("name", "labels", "buckets", "_lock", "_counts",
                 "_sum", "_count")

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigError(
                f"histogram {name} needs ascending bucket bounds, "
                f"got {bounds}"
            )
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def merge(self, snapshot: dict) -> None:
        """Add another histogram's ``snapshot()`` into this one.

        The whole application happens under this histogram's lock, so a
        concurrent :meth:`snapshot` can never observe bucket counts
        without the matching ``sum``/``count`` — the torn-histogram
        hazard cluster workers publishing into a shared registry would
        otherwise hit.
        """
        if tuple(snapshot.get("buckets", ())) != self.buckets:
            raise ConfigError(
                f"histogram {self.name} bucket mismatch: "
                f"{self.buckets} vs {tuple(snapshot.get('buckets', ()))}"
            )
        counts = snapshot["counts"]
        if len(counts) != len(self._counts):
            raise ConfigError(
                f"histogram {self.name} expects {len(self._counts)} "
                f"bucket counts, got {len(counts)}"
            )
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += int(c)
            self._sum += float(snapshot["sum"])
            self._count += int(snapshot["count"])

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def counts(self) -> List[int]:
        with self._lock:
            return list(self._counts)

    def snapshot(self):
        with self._lock:
            return {
                "buckets": list(self.buckets),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricRegistry:
    """Thread-safe, name-keyed home for every metric of a process.

    One process-wide default instance (:func:`default_registry`) serves
    subsystems with global state (training, sweeps, compilation); the
    serving engine gives each engine its own registry so per-engine
    snapshots stay independent (see
    :class:`repro.serve.stats.EngineStatsView`).
    """

    def __init__(self):
        # Reentrant: merge_snapshot holds it across get-or-create calls
        # so a whole remote snapshot lands atomically.
        self._lock = threading.RLock()
        self._metrics: Dict[Tuple[str, LabelItems], object] = {}
        self._kinds: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, kind: str, name: str, labels: Dict[str, str],
                       **kwargs):
        if not _NAME_RE.match(name):
            raise ConfigError(
                f"metric name {name!r} does not follow "
                "'subsystem.noun_verb' (lowercase dotted segments); "
                "see docs/observability.md"
            )
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                registered = self._kinds.get(name)
                if registered is not None and registered != kind:
                    raise ConfigError(
                        f"metric {name!r} already registered as a "
                        f"{registered}, cannot re-register as a {kind}"
                    )
                self._kinds[name] = kind
                metric = _KINDS[kind](name, key[1], **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, _KINDS[kind]):
                raise ConfigError(
                    f"metric {name!r} is a "
                    f"{type(metric).__name__.lower()}, not a {kind}"
                )
            return metric

    def counter(self, name: str, **labels) -> Counter:
        """Get-or-create the counter ``name`` with ``labels``."""
        return self._get_or_create("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """Get-or-create the gauge ``name`` with ``labels``."""
        return self._get_or_create("gauge", name, labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels,
    ) -> Histogram:
        """Get-or-create the histogram ``name`` with ``labels``.

        ``buckets`` is honoured on first creation; later calls reuse
        the existing bucket layout (passing different bounds for the
        same child is a :class:`~repro.errors.ConfigError`).
        """
        metric = self._get_or_create(
            "histogram", name, labels,
            **({"buckets": buckets} if buckets is not None else {}),
        )
        if buckets is not None and metric.buckets != tuple(
            float(b) for b in buckets
        ):
            raise ConfigError(
                f"histogram {name!r} already exists with buckets "
                f"{metric.buckets}; cannot change to {tuple(buckets)}"
            )
        return metric

    # ------------------------------------------------------------------
    def children(self, name: str) -> Dict[LabelItems, object]:
        """Every labeled child of ``name``: ``{label items: metric}``."""
        with self._lock:
            return {
                labels: metric
                for (metric_name, labels), metric in self._metrics.items()
                if metric_name == name
            }

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._kinds)

    def clear(self) -> None:
        """Drop every metric (tests and process-level resets)."""
        with self._lock:
            self._metrics.clear()
            self._kinds.clear()

    def snapshot(self) -> dict:
        """A JSON-able dump: ``{kind: {name{labels}: value}}``.

        Counter/gauge values are scalars; histogram values are
        ``{buckets, counts, sum, count}`` dicts.  The flat string keys
        (``name{label=value,...}``) round-trip through the run journal
        unambiguously because label items are sorted.

        The registry lock is held for the whole dump, so a snapshot is
        *consistent across metrics*: updates applied atomically under
        the same lock (:meth:`merge_snapshot`) are either fully visible
        or not at all — a reader can never see, say, a batch's request
        counter without its latency histogram entries.
        """
        out = {"counters": {}, "gauges": {}, "histograms": {}}
        section = {"counter": "counters", "gauge": "gauges",
                   "histogram": "histograms"}
        with self._lock:
            items = list(self._metrics.items())
            kinds = dict(self._kinds)
            for (name, labels), metric in sorted(
                items, key=lambda kv: kv[0]
            ):
                key = name + _label_suffix(labels)
                out[section[kinds[name]]][key] = metric.snapshot()
        return out

    def drain(self) -> dict:
        """Snapshot and reset every metric in one atomic step.

        Cluster worker processes flush their local registry with this
        and ship the snapshot to the parent, which applies it via
        :meth:`merge_snapshot`; draining (rather than re-sending
        cumulative values) makes the merge a plain addition.
        """
        with self._lock:
            snap = self.snapshot()
            self._metrics.clear()
            self._kinds.clear()
        return snap

    def merge_snapshot(self, snapshot: dict, **labels) -> None:
        """Apply another registry's :meth:`snapshot` into this one.

        Counter values add, gauge values overwrite, histograms merge
        bucket-wise (:meth:`Histogram.merge`).  ``labels`` are appended
        to every child — the cluster passes ``replica="3"`` so one
        parent registry holds the per-replica breakdown.  The whole
        merge happens under the registry lock, paired with the
        lock-holding :meth:`snapshot`: concurrent readers see all of a
        worker's flush or none of it, never a torn histogram or a
        request count without its batch count.
        """
        with self._lock:
            for key, value in snapshot.get("counters", {}).items():
                name, child_labels = parse_metric_key(key)
                child_labels.update({k: str(v) for k, v in labels.items()})
                self.counter(name, **child_labels).inc(int(value))
            for key, value in snapshot.get("gauges", {}).items():
                name, child_labels = parse_metric_key(key)
                child_labels.update({k: str(v) for k, v in labels.items()})
                self.gauge(name, **child_labels).set(value)
            for key, value in snapshot.get("histograms", {}).items():
                name, child_labels = parse_metric_key(key)
                child_labels.update({k: str(v) for k, v in labels.items()})
                self.histogram(
                    name, buckets=value.get("buckets"), **child_labels
                ).merge(value)

    def report(self) -> str:
        """Human-readable table of every counter and gauge + histograms."""
        from repro.utils.tabulate import format_table

        snap = self.snapshot()
        rows = []
        for key, value in snap["counters"].items():
            rows.append([key, "counter", value])
        for key, value in snap["gauges"].items():
            rows.append([key, "gauge", value])
        for key, value in snap["histograms"].items():
            mean = value["sum"] / value["count"] if value["count"] else 0.0
            rows.append(
                [key, "histogram",
                 f"n={value['count']} mean={mean:.4g}"]
            )
        return format_table(
            ["metric", "kind", "value"],
            rows or [["(no metrics)", "", ""]],
            title="metric registry",
        )


#: The process-wide default registry.
_DEFAULT = MetricRegistry()


def default_registry() -> MetricRegistry:
    """The process-wide registry subsystem instrumentation writes to."""
    return _DEFAULT


def counter(name: str, **labels) -> Counter:
    """``default_registry().counter(...)`` — the common write path."""
    return _DEFAULT.counter(name, **labels)


def gauge(name: str, **labels) -> Gauge:
    """``default_registry().gauge(...)``."""
    return _DEFAULT.gauge(name, **labels)


def histogram(name: str, buckets=None, **labels) -> Histogram:
    """``default_registry().histogram(...)``."""
    return _DEFAULT.histogram(name, buckets=buckets, **labels)
