"""Lightweight trace spans: nested, thread-aware, monotonic-clock.

:func:`span` is the one bracketing primitive the repo's subsystems
use.  A span:

- times its block on the monotonic ``perf_counter`` clock;
- nests — each thread keeps its own span stack, so a span knows its
  parent and depth even under the serving engine's worker pool;
- **forwards into the op profiler**: when ``--profile-ops`` is active,
  every span shows up as an op record under its name, with the same
  pool-allocation deltas the kernel brackets report.  The legacy
  ``repro.utils.profiler.bracket`` is now a deprecated alias of this
  function.

When nothing is listening (no active profiler, no capture buffer) a
span costs two thread-local reads and two ``perf_counter`` calls —
cheap enough for per-batch and per-epoch brackets.  Kernel-grade hot
paths (per-op inside a forward pass) keep using the raw
``profiler.op_start/op_end`` pair, which is cheaper still.

For tests and ad-hoc analysis, :func:`capture_spans` collects every
finished :class:`Span` (across all threads) within a block.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional

from repro.utils import profiler as _profiler

_tls = threading.local()

#: Capture buffer installed by :func:`capture_spans` (None = off).
_CAPTURE: Optional[List["Span"]] = None
_CAPTURE_LOCK = threading.Lock()


@dataclass
class Span:
    """One finished (or in-flight) trace span."""

    name: str
    #: Slash-joined names from the thread's outermost span down to this
    #: one, e.g. ``"serve.batch/compile.model"``.
    path: str
    depth: int
    thread: str
    start_s: float
    duration_s: float = 0.0


def _stack() -> List[Span]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def current_span() -> Optional[Span]:
    """The innermost open span on this thread, or None."""
    stack = getattr(_tls, "stack", None)
    return stack[-1] if stack else None


@contextlib.contextmanager
def span(name: str):
    """Bracket a block as one named trace span.

    Yields the :class:`Span`, whose ``duration_s`` is filled in when
    the block exits — callers that want the wall time (the trainer's
    per-epoch events, the sweep engine's per-point timing) read it
    after the ``with`` block instead of re-timing.
    """
    stack = _stack()
    parent = stack[-1] if stack else None
    record = Span(
        name=name,
        path=f"{parent.path}/{name}" if parent else name,
        depth=len(stack),
        thread=threading.current_thread().name,
        start_s=perf_counter(),
    )
    stack.append(record)
    token = _profiler.op_start()
    try:
        yield record
    finally:
        record.duration_s = perf_counter() - record.start_s
        _profiler.op_end(token, name)
        # Pop our own frame even if a nested span leaked (defensive:
        # never let one bad block corrupt the whole thread's stack).
        while stack and stack[-1] is not record:
            stack.pop()
        if stack:
            stack.pop()
        capture = _CAPTURE
        if capture is not None:
            with _CAPTURE_LOCK:
                capture.append(record)


@contextlib.contextmanager
def capture_spans():
    """Collect every span finished inside the block, across threads.

    Yields the list the spans are appended to (in completion order —
    children complete before parents, and worker threads interleave).
    """
    global _CAPTURE
    previous = _CAPTURE
    collected: List[Span] = []
    _CAPTURE = collected
    try:
        yield collected
    finally:
        _CAPTURE = previous
