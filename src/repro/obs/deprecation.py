"""Warn-once deprecation helper shared by the telemetry shims.

The same pattern the Workbench keyword shims use: the first use of a
deprecated entry point emits one :class:`DeprecationWarning` per
process, later uses are silent.  Tests reset the registry via
:func:`reset` to assert the exactly-once contract.
"""

from __future__ import annotations

import warnings

#: Keys whose warning already fired this process.
_WARNED: set = set()


def warn_once(key: str, message: str, stacklevel: int = 3) -> bool:
    """Emit ``message`` as a DeprecationWarning once per ``key``.

    Returns True when the warning fired (first use), False on repeats.
    """
    if key in _WARNED:
        return False
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)
    return True


def reset(key: str = None) -> None:
    """Forget fired warnings (all, or one key) — for tests."""
    if key is None:
        _WARNED.clear()
    else:
        _WARNED.discard(key)
