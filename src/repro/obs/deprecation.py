"""Warn-once deprecation helper shared by the telemetry shims.

The single per-process registry behind every deprecation shim (the
legacy ``cache`` CLI alias, the ``Workbench.model``/keyword shims, the
profiler bracket): the first use of a deprecated entry point emits one
:class:`DeprecationWarning` per process, later uses are silent.  Tests
reset the registry via :func:`reset` to assert the exactly-once
contract.

Pool workers (sweep fan-out, serving replicas) inherit none of the
parent's module state, so without care every worker re-warns for a shim
the parent already warned about — N workers, N copies of the same
warning.  Worker entry points call :func:`mark_worker_process` right
after startup; a marked process suppresses deprecation warnings
entirely, on the grounds that the parent process owns the user-facing
warning.
"""

from __future__ import annotations

import warnings

#: Keys whose warning already fired this process.
_WARNED: set = set()

#: True in pool-worker processes, where warnings are suppressed.
_IN_WORKER = False


def warn_once(key: str, message: str, stacklevel: int = 3) -> bool:
    """Emit ``message`` as a DeprecationWarning once per ``key``.

    Returns True when the warning fired (first use), False on repeats
    and always in worker processes (see :func:`mark_worker_process`).
    """
    if _IN_WORKER or key in _WARNED:
        return False
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)
    return True


def mark_worker_process(active: bool = True) -> None:
    """Flag this process as a pool worker (suppresses all warnings).

    Called by worker initializers (:func:`repro.parallel.sweep.
    _init_worker`, the serving cluster's replica entry point) so each
    fanned-out process does not repeat warnings the parent already
    emitted.  ``active=False`` unmarks — for tests.
    """
    global _IN_WORKER
    _IN_WORKER = active


def in_worker_process() -> bool:
    """True when this process was marked via :func:`mark_worker_process`."""
    return _IN_WORKER


def reset(key: str = None) -> None:
    """Forget fired warnings (all, or one key) — for tests."""
    if key is None:
        _WARNED.clear()
    else:
        _WARNED.discard(key)
