"""Per-run JSONL event journal under ``results/runs/<run_id>/``.

One run — a CLI invocation, a test, a serving session — owns one
directory::

    results/runs/<run_id>/
        manifest.json   # run-start manifest (atomic write-then-rename)
        events.jsonl    # append-only event stream
        summary.json    # run-end summary (atomic write-then-rename)

Every line of ``events.jsonl`` is one JSON object with at least
``event`` (a registered type, see :data:`EVENT_SCHEMAS`), ``ts``
(wall-clock seconds) and ``seq`` (monotone per-run sequence number).
Floats are serialized with ``repr`` precision by the ``json`` module,
so numeric payloads (accuracies, losses, medians) round-trip **bit
exactly** — ``obs summary`` can reproduce a live run's numbers from
the journal alone.

Crash safety: the stream is append-and-flush, so a crash can tear at
most the final line; :func:`read_events` skips a torn final line and
raises :class:`~repro.errors.JournalError` only for corruption earlier
in the stream.  The manifest and summary use an atomic
write-tmp-then-rename protocol (the same one the workbench's model
cache uses), so those files are either absent or complete.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
import threading
import time
from hashlib import sha256
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError, JournalError
from repro.utils.serialization import atomic_write_json as _atomic_write_json

#: Journal format version, recorded in the manifest and run_start event.
SCHEMA_VERSION = 1

#: Registered event types -> required payload fields.  ``journal.event``
#: validates against this at write time and
#: :func:`validate_event` at read time, so the schema check is a true
#: round trip.  Extra fields are always allowed.
EVENT_SCHEMAS: Dict[str, Tuple[str, ...]] = {
    # lifecycle
    "run_start": ("run_id", "schema_version", "argv", "git_sha",
                  "config_hash", "seed"),
    "run_end": ("status",),
    # periodic registry dumps (any registry; ``scope`` names which)
    "metrics": ("scope", "metrics"),
    # training
    "train.epoch": ("epoch", "train_loss", "val_accuracy", "lr",
                    "epoch_seconds", "batches"),
    "train.fit": ("best_accuracy", "best_epoch", "epochs_run",
                  "stopped_early"),
    # fault tolerance (see repro.ckpt / docs/fault_tolerance.md)
    "train.checkpoint": ("epoch", "path"),
    "train.resume": ("epoch", "checkpoint"),
    "run.interrupted": ("signal",),
    # sweeps
    "sweep.start": ("points",),
    "sweep.point_done": ("index", "key", "seconds"),
    "sweep.point_failed": ("index", "key", "error", "traceback"),
    "sweep.point_retry": ("index", "key", "attempt"),
    "sweep.point_skipped": ("index", "key"),
    "sweep.resume": ("source_run", "reused"),
    "sweep.end": ("completed", "failed"),
    # design-space exploration (see repro.explore / docs/explore.md)
    "explore.start": ("name", "points", "strategy"),
    "explore.point": ("enob", "nmult", "eq_enob", "emac_pj", "status"),
    "explore.frontier": ("cells", "level_curves"),
    "explore.end": ("evaluated", "pruned", "merged", "frontier_size"),
    # serving
    "serve.stats": ("stats",),
    "serve.replica": ("replica", "action"),
    "serve.shared": ("spec", "bytes", "path"),
    # model registry tiers (see repro.registry / docs/registry.md)
    "registry.tier": ("spec", "action", "tier"),
    "registry.warmup": ("spec", "status"),
    # workbench artifacts
    "bench.artifact": ("name", "source"),
    # freeform annotation
    "note": ("message",),
}


def to_jsonable(value):
    """Best-effort conversion of ``value`` to JSON-serializable types.

    Handles the result shapes this repo produces — numpy scalars and
    arrays, dataclasses (``EvalStats``), :class:`~repro.obs.result.
    EvalResult` — recursively; anything else falls back to ``repr`` so
    journaling never fails on an exotic payload.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # EvalResult subclasses float but carries extra fields worth
        # keeping; as_dict preserves the accuracy bit-exactly.
        as_dict = getattr(value, "as_dict", None)
        if as_dict is not None:
            return to_jsonable(as_dict())
        return float(value)
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    item = getattr(value, "item", None)  # numpy scalars
    if item is not None and getattr(value, "shape", None) == ():
        return to_jsonable(item())
    tolist = getattr(value, "tolist", None)  # numpy arrays
    if tolist is not None:
        return to_jsonable(tolist())
    return repr(value)


def validate_event(event: dict) -> dict:
    """Check one journal event against :data:`EVENT_SCHEMAS`.

    Returns the event for chaining; raises
    :class:`~repro.errors.ConfigError` on an unknown type or a missing
    required field.
    """
    name = event.get("event")
    if name is None:
        raise ConfigError(f"journal event without an 'event' field: {event}")
    if name not in EVENT_SCHEMAS:
        raise ConfigError(
            f"unknown journal event type {name!r}; registered types: "
            f"{sorted(EVENT_SCHEMAS)}"
        )
    for field in ("ts", "seq"):
        if field not in event:
            raise ConfigError(f"journal event {name!r} missing {field!r}")
    missing = [f for f in EVENT_SCHEMAS[name] if f not in event]
    if missing:
        raise ConfigError(
            f"journal event {name!r} missing required fields {missing}"
        )
    return event


def atomic_write_json(path: str, payload: dict) -> None:
    """Write ``payload`` so ``path`` is either absent or complete.

    Delegates to the shared crash-safe primitive
    (:func:`repro.utils.serialization.atomic_write`): tmp + fsync +
    rename + parent-directory fsync, the same dance every durable
    artifact in the repo uses.
    """
    _atomic_write_json(path, payload, sort_keys=True)


def git_sha() -> Optional[str]:
    """Best-effort HEAD SHA of the current working tree, else None."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def config_hash(config) -> Optional[str]:
    """Stable sha256 over a config dataclass (or dict), else None."""
    if config is None:
        return None
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = to_jsonable(config)
    elif isinstance(config, dict):
        payload = to_jsonable(config)
    else:
        payload = repr(config)
    text = json.dumps(payload, sort_keys=True)
    return sha256(text.encode()).hexdigest()


class RunJournal:
    """Append-only JSONL event stream for one run.

    Use :meth:`start` (or the module-level :func:`start_run`) rather
    than the constructor; ``start`` creates the run directory, writes
    the manifest atomically, and opens the stream.
    """

    def __init__(self, run_dir: str, run_id: str, manifest: dict):
        self.run_dir = run_dir
        self.run_id = run_id
        self.manifest = manifest
        self.events_path = os.path.join(run_dir, "events.jsonl")
        self._lock = threading.Lock()
        self._seq = 0
        self._sweep_ordinal = 0
        self._fh = open(self.events_path, "a")
        self._closed = False
        self.event("run_start", **manifest)

    # ------------------------------------------------------------------
    @classmethod
    def start(
        cls,
        results_dir: str = "results",
        run_id: Optional[str] = None,
        argv: Optional[List[str]] = None,
        config=None,
        seed: Optional[int] = None,
    ) -> "RunJournal":
        """Open a journal under ``<results_dir>/runs/<run_id>/``.

        The manifest records what ran and how: CLI argv, git SHA, a
        stable hash of the experiment config, and the master seed —
        the provenance fields credible AMS benchmarking needs.
        """
        if run_id is None:
            run_id = time.strftime("%Y%m%d-%H%M%S") + f"-{os.getpid()}"
        if os.sep in run_id or run_id in ("", ".", ".."):
            raise ConfigError(f"invalid run_id {run_id!r}")
        run_dir = os.path.join(results_dir, "runs", run_id)
        os.makedirs(run_dir, exist_ok=True)
        manifest = {
            "run_id": run_id,
            "schema_version": SCHEMA_VERSION,
            "argv": list(sys.argv if argv is None else argv),
            "git_sha": git_sha(),
            "config_hash": config_hash(config),
            "seed": seed,
            "started_unix_s": time.time(),
        }
        atomic_write_json(os.path.join(run_dir, "manifest.json"), manifest)
        return cls(run_dir, run_id, manifest)

    # ------------------------------------------------------------------
    def event(self, event_type: str, **payload) -> dict:
        """Append one validated event; flushed so a crash tears <= 1 line."""
        if self._closed:
            raise ConfigError(
                f"journal for run {self.run_id!r} is closed"
            )
        with self._lock:
            record = {
                "event": event_type,
                "ts": time.time(),
                "seq": self._seq,
            }
            record.update(
                {k: to_jsonable(v) for k, v in payload.items()}
            )
            validate_event(record)
            self._fh.write(json.dumps(record) + "\n")
            self._fh.flush()
            self._seq += 1
            return record

    def next_sweep_ordinal(self) -> int:
        """Position of the next ``sweep_map`` call within this run.

        Sweep-level resume (:mod:`repro.ckpt.resume`) matches the n-th
        sweep of a resumed run against the n-th sweep of the original,
        so the ordinal is allocated here, once per ``sweep.start``.
        """
        with self._lock:
            ordinal = self._sweep_ordinal
            self._sweep_ordinal += 1
            return ordinal

    def metrics_snapshot(self, registry, scope: str = "default") -> dict:
        """Journal a full dump of ``registry`` as a ``metrics`` event."""
        return self.event(
            "metrics", scope=scope, metrics=registry.snapshot()
        )

    def close(self, status: str = "ok", **summary) -> None:
        """Write the run-end event + atomic ``summary.json``; idempotent."""
        if self._closed:
            return
        self.event("run_end", status=status, **summary)
        self._closed = True
        try:
            os.fsync(self._fh.fileno())  # make the final events durable
        except OSError:
            pass
        self._fh.close()
        atomic_write_json(
            os.path.join(self.run_dir, "summary.json"),
            dict(
                {"run_id": self.run_id, "status": status},
                **{k: to_jsonable(v) for k, v in summary.items()},
            ),
        )

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        self.close(status="ok" if exc_type is None else "failed")


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
def resolve_run_dir(run: str, results_dir: str = "results") -> str:
    """Accept a run id or a run directory path; return the directory."""
    if os.path.isdir(run):
        return run
    run_dir = os.path.join(results_dir, "runs", run)
    if os.path.isdir(run_dir):
        return run_dir
    raise ConfigError(
        f"no run {run!r}: neither a directory nor under "
        f"{os.path.join(results_dir, 'runs')}"
    )


def read_events(
    run: str,
    results_dir: str = "results",
    validate: bool = False,
) -> List[dict]:
    """Every event of a run, tolerating a torn final line.

    A final line without a newline terminator or that fails to decode
    is the expected residue of a crash mid-append and is silently
    skipped; an undecodable line anywhere *else* raises
    :class:`~repro.errors.JournalError`.  With ``validate=True`` each
    surviving event is also checked against :data:`EVENT_SCHEMAS`.
    """
    run_dir = resolve_run_dir(run, results_dir)
    path = os.path.join(run_dir, "events.jsonl")
    if not os.path.exists(path):
        raise ConfigError(f"no events.jsonl under {run_dir}")
    with open(path) as fh:
        lines = fh.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()  # the normal trailing newline
    events = []
    last = len(lines) - 1
    for index, line in enumerate(lines):
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            if index == last:
                continue  # torn final line from a crash: skip, not fatal
            raise JournalError(
                f"corrupt journal line {index + 1} of {path}: {line[:80]!r}"
            ) from None
        if validate:
            validate_event(event)
        events.append(event)
    return events


def list_runs(results_dir: str = "results") -> List[str]:
    """Run ids under ``<results_dir>/runs``, oldest first."""
    root = os.path.join(results_dir, "runs")
    if not os.path.isdir(root):
        return []
    return sorted(
        name
        for name in os.listdir(root)
        if os.path.isdir(os.path.join(root, name))
    )


# ----------------------------------------------------------------------
# the process-wide current run
# ----------------------------------------------------------------------
_CURRENT: Optional[RunJournal] = None


def start_run(
    results_dir: str = "results",
    run_id: Optional[str] = None,
    argv: Optional[List[str]] = None,
    config=None,
    seed: Optional[int] = None,
) -> RunJournal:
    """Open a journal and install it as the process's current run.

    Instrumented subsystems (trainer, sweep engine, CLI) publish
    through :func:`journal_event`, which no-ops when no run is active —
    so library code can journal unconditionally at near-zero cost.
    """
    global _CURRENT
    if _CURRENT is not None and not _CURRENT.closed:
        raise ConfigError(
            f"run {_CURRENT.run_id!r} is already active; call end_run() "
            "first (one journal per process)"
        )
    _CURRENT = RunJournal.start(
        results_dir=results_dir,
        run_id=run_id,
        argv=argv,
        config=config,
        seed=seed,
    )
    return _CURRENT


def current_journal() -> Optional[RunJournal]:
    """The active :class:`RunJournal`, or None outside a run."""
    return _CURRENT


def end_run(status: str = "ok", **summary) -> None:
    """Close the current run (no-op when none is active)."""
    global _CURRENT
    if _CURRENT is not None:
        _CURRENT.close(status=status, **summary)
        _CURRENT = None


def journal_event(event_type: str, **payload) -> bool:
    """Publish one event to the current run, if any.

    Returns True when the event was written.  The inactive path is one
    global read and a None check, cheap enough for library code to
    call unconditionally (bounded alongside the profiler's disabled
    brackets in ``benchmarks/test_bench_overhead.py``).
    """
    journal = _CURRENT
    if journal is None or journal.closed:
        return False
    journal.event(event_type, **payload)
    return True
