"""The unified evaluation result shape: :class:`EvalResult`.

Before this existed the repo had three ad-hoc result shapes for "how
well did the model do": ``evaluate_accuracy`` returned a bare float,
``predict_logits`` returned raw logits whose provenance (noise seed,
wall time) evaporated, and the serve CLI re-derived accuracy from
``Prediction`` lists by hand.  :class:`EvalResult` unifies them:

- ``accuracy`` — the top-k hit rate (the value everyone compares);
- ``logits_hash`` — CRC32 over the raw logits bytes, the cheap
  fingerprint the bit-identity story is audited with (two runs agree
  iff their hashes agree);
- ``wall_time_s`` — monotonic wall time of the evaluation;
- ``noise_seed`` — the AMS noise seed the pass ran under (None for
  deterministic variants).

Backward compatibility is total: ``EvalResult`` *is a float* equal to
its accuracy, so every existing call site — arithmetic, comparisons,
formatting, ``np.mean`` over a list of results, JSON serialization —
keeps working unchanged.  It also tuple-unpacks::

    accuracy, logits_hash, wall_time_s, noise_seed = result
"""

from __future__ import annotations

import zlib
from typing import Iterator, Optional, Sequence

#: Field order for tuple unpacking and ``as_dict``.
FIELDS = ("accuracy", "logits_hash", "wall_time_s", "noise_seed")


def hash_logits(logits, running: int = 0) -> int:
    """CRC32 of a logits array's bytes, chainable across batches."""
    import numpy as np

    array = np.ascontiguousarray(logits)
    return zlib.crc32(array.tobytes(), running)


class EvalResult(float):
    """A float accuracy that also carries its evaluation provenance.

    ``float(result)`` / arithmetic / ``f"{result:.4f}"`` all see the
    accuracy; the extra fields ride along as attributes.  Documented
    field order (for unpacking): ``accuracy, logits_hash, wall_time_s,
    noise_seed``.
    """

    __slots__ = ("logits_hash", "wall_time_s", "noise_seed")

    _fields = FIELDS

    def __new__(
        cls,
        accuracy: float,
        logits_hash: str = "",
        wall_time_s: float = 0.0,
        noise_seed: Optional[int] = None,
    ) -> "EvalResult":
        self = super().__new__(cls, accuracy)
        self.logits_hash = logits_hash
        self.wall_time_s = wall_time_s
        self.noise_seed = noise_seed
        return self

    # ------------------------------------------------------------------
    @property
    def accuracy(self) -> float:
        return float(self)

    def __iter__(self) -> Iterator:
        yield float(self)
        yield self.logits_hash
        yield self.wall_time_s
        yield self.noise_seed

    def as_dict(self) -> dict:
        """JSON-able dict; ``accuracy`` round-trips bit exactly."""
        return {
            "accuracy": float(self),
            "logits_hash": self.logits_hash,
            "wall_time_s": self.wall_time_s,
            "noise_seed": self.noise_seed,
        }

    def __repr__(self) -> str:
        return (
            f"EvalResult(accuracy={float(self)!r}, "
            f"logits_hash={self.logits_hash!r}, "
            f"wall_time_s={self.wall_time_s!r}, "
            f"noise_seed={self.noise_seed!r})"
        )

    # float.__repr__ (== str() for plain floats) keeps log lines and
    # tables identical to the pre-EvalResult output; plain
    # float.__str__ would resolve to object.__str__ and print the
    # verbose repr above.
    def __str__(self) -> str:
        return float.__repr__(self)

    def __reduce__(self):
        # float subclasses need explicit pickle support to cross the
        # sweep runner's process boundary with their fields intact.
        return (
            EvalResult,
            (float(self), self.logits_hash, self.wall_time_s,
             self.noise_seed),
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_logits(
        cls,
        logits,
        labels,
        wall_time_s: float = 0.0,
        noise_seed: Optional[int] = None,
    ) -> "EvalResult":
        """Accuracy + hash of one raw ``predict_logits`` output."""
        import numpy as np

        logits = np.asarray(logits)
        labels = np.asarray(labels)
        hits = logits.argmax(axis=1) == labels
        return cls(
            accuracy=float(hits.mean()) if len(labels) else 0.0,
            logits_hash=f"{hash_logits(logits):08x}",
            wall_time_s=wall_time_s,
            noise_seed=noise_seed,
        )

    @classmethod
    def from_predictions(
        cls,
        predictions: Sequence,
        labels,
        wall_time_s: float = 0.0,
        noise_seed: Optional[int] = None,
    ) -> "EvalResult":
        """Accuracy + hash over serve-engine ``Prediction`` objects.

        ``labels[i]`` is the ground truth for ``predictions[i]``; the
        hash chains each prediction's logits in request order, so two
        serving runs that returned bit-identical logits (the engine's
        determinism contract) hash identically regardless of batching.
        """
        running = 0
        hits = 0
        for prediction, label in zip(predictions, labels):
            running = hash_logits(prediction.logits, running)
            hits += int(prediction.label == label)
        count = min(len(predictions), len(labels))
        return cls(
            accuracy=hits / count if count else 0.0,
            logits_hash=f"{running:08x}",
            wall_time_s=wall_time_s,
            noise_seed=noise_seed,
        )
