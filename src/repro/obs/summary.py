"""Render run journals: ``obs tail`` / ``obs summary`` / ``obs diff``.

Everything here is a pure function from journal events to text (the
CLI does the printing), built on the same ``format_table`` /
``ascii_chart`` utilities the experiment harness renders with.  The
numbers come straight from the journal — floats round-trip through
JSON with ``repr`` precision — so a summary reproduces the live run's
values bit for bit (``tests/obs/test_e2e_demo.py`` holds this to
byte-identical table output).
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Tuple

from repro.obs.journal import list_runs, read_events, resolve_run_dir
from repro.obs.metrics import parse_metric_key
from repro.utils.tabulate import format_table


def events_of(events: List[dict], event_type: str) -> List[dict]:
    return [e for e in events if e.get("event") == event_type]


def last_metrics(
    events: List[dict], scope: Optional[str] = None
) -> Optional[dict]:
    """The final ``metrics`` snapshot (optionally of one scope)."""
    for event in reversed(events):
        if event.get("event") == "metrics" and (
            scope is None or event.get("scope") == scope
        ):
            return event["metrics"]
    return None


# ----------------------------------------------------------------------
# section extractors (structured, for tests and diffing)
# ----------------------------------------------------------------------
def _point_accuracy(result) -> Optional[float]:
    """Best-effort headline accuracy of one journaled point result.

    Understands the repo's result payloads: an
    :class:`~repro.obs.result.EvalResult` dict (``accuracy``), an
    ``EvalStats`` dict (``mean``), a bare number, or a list of any of
    those (first extractable element wins).  None when nothing fits.
    """
    if isinstance(result, bool):
        return None
    if isinstance(result, (int, float)):
        return result
    if isinstance(result, dict):
        for key in ("accuracy", "mean"):
            value = result.get(key)
            if isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                return value
        return None
    if isinstance(result, list):
        for item in result:
            accuracy = _point_accuracy(item)
            if accuracy is not None:
                return accuracy
    return None


def sweep_rows(events: List[dict]) -> List[List[object]]:
    """One row per completed sweep point: ``[key, accuracy, seconds]``.

    ``accuracy`` is extracted via :func:`_point_accuracy`; None when
    the point's result carried no recognisable accuracy.
    """
    return [
        [event["key"], _point_accuracy(event.get("result")),
         event["seconds"]]
        for event in events_of(events, "sweep.point_done")
    ]


def serve_batch_hist(events: List[dict]) -> Dict[str, Dict[int, int]]:
    """``{spec: {batch size: count}}`` from the last serve.stats event."""
    stats_events = events_of(events, "serve.stats")
    if not stats_events:
        return {}
    specs = stats_events[-1]["stats"].get("specs", {})
    return {
        key: {int(size): count for size, count in spec["batch_hist"].items()}
        for key, spec in specs.items()
    }


def serve_replica_rows(events: List[dict]) -> List[List[object]]:
    """One row per cluster replica from the last ``serve.stats`` event.

    ``[replica, batches, requests, mean batch, p50 ms, p99 ms]``;
    empty when the run served in-process (no ``replicas`` section).
    """
    stats_events = events_of(events, "serve.stats")
    if not stats_events:
        return []
    replicas = stats_events[-1]["stats"].get("replicas", {})
    return [
        [
            rep,
            data["batches"],
            data["requests"],
            round(data["mean_batch"], 2),
            round(data["p50_ms"], 2),
            round(data["p99_ms"], 2),
        ]
        for rep, data in sorted(replicas.items(), key=lambda kv: int(kv[0]))
    ]


def registry_tier_rows(events: List[dict]) -> List[List[object]]:
    """``[metric key, value]`` for every ``registry.*`` counter/gauge.

    Taken from the run's final ``metrics`` snapshot, so the rows
    reconstruct the registry's tier traffic (hits, misses, promotions,
    evictions, warm occupancy) from the journal alone.
    """
    metrics = last_metrics(events)
    if not metrics:
        return []
    rows: List[List[object]] = []
    for section in ("counters", "gauges"):
        for key, value in metrics.get(section, {}).items():
            if key.startswith("registry."):
                rows.append([key, value])
    return sorted(rows)


def registry_warmup_rows(events: List[dict]) -> List[List[object]]:
    """``[spec, status]`` per ``registry.warmup`` lifecycle event."""
    return [
        [event["spec"], event["status"]]
        for event in events_of(events, "registry.warmup")
    ]


def train_rows(events: List[dict]) -> List[List[object]]:
    return [
        [e["epoch"], e["train_loss"], e["val_accuracy"], e["lr"],
         e["epoch_seconds"]]
        for e in events_of(events, "train.epoch")
    ]


# ----------------------------------------------------------------------
# text renderers
# ----------------------------------------------------------------------
def _fmt_ts(ts: float) -> str:
    return time.strftime("%H:%M:%S", time.localtime(ts))


def _event_line(event: dict, t0: float) -> str:
    skip = ("event", "ts", "seq")
    fields = []
    for key, value in event.items():
        if key in skip:
            continue
        text = json.dumps(value) if isinstance(value, (dict, list)) else str(
            value
        )
        if len(text) > 60:
            text = text[:57] + "..."
        fields.append(f"{key}={text}")
    return (
        f"{_fmt_ts(event['ts'])} +{event['ts'] - t0:8.3f}s "
        f"{event['event']:<20s} " + " ".join(fields)
    )


def tail_run(run: str, results_dir: str = "results", n: int = 20) -> str:
    """The last ``n`` events of a run, one line each."""
    events = read_events(run, results_dir)
    if not events:
        return "(empty journal)"
    t0 = events[0]["ts"]
    lines = [_event_line(event, t0) for event in events[-n:]]
    if len(events) > n:
        lines.insert(0, f"... ({len(events) - n} earlier events)")
    return "\n".join(lines)


def render_metrics(metrics: dict) -> str:
    """One table over a ``metrics`` snapshot's counters and gauges."""
    rows: List[List[object]] = []
    for key, value in metrics.get("counters", {}).items():
        rows.append([key, "counter", value])
    for key, value in metrics.get("gauges", {}).items():
        rows.append([key, "gauge", value])
    for key, value in metrics.get("histograms", {}).items():
        mean = value["sum"] / value["count"] if value["count"] else 0.0
        rows.append([key, "histogram", f"n={value['count']} mean={mean:.4g}"])
    return format_table(
        ["metric", "kind", "value"],
        rows or [["(no metrics)", "", ""]],
        title="final metric snapshot",
    )


def summarize_run(run: str, results_dir: str = "results") -> str:
    """The full human-readable reconstruction of one run's journal."""
    run_dir = resolve_run_dir(run, results_dir)
    events = read_events(run_dir)
    parts: List[str] = []

    starts = events_of(events, "run_start")
    if starts:
        manifest = starts[0]
        parts.append(
            format_table(
                ["field", "value"],
                [
                    ["run_id", manifest.get("run_id")],
                    ["argv", " ".join(manifest.get("argv") or [])],
                    ["git_sha", manifest.get("git_sha")],
                    ["config_hash", manifest.get("config_hash")],
                    ["seed", manifest.get("seed")],
                    ["events", len(events)],
                ],
                title=f"run {manifest.get('run_id')}",
            )
        )

    epochs = train_rows(events)
    if epochs:
        parts.append(
            format_table(
                ["epoch", "train loss", "val accuracy", "lr", "seconds"],
                epochs,
                title="training (from train.epoch events)",
            )
        )

    points = sweep_rows(events)
    if points:
        parts.append(
            format_table(
                ["point", "accuracy", "seconds"],
                points,
                title="sweep (from sweep.point_done events)",
            )
        )
    failures = events_of(events, "sweep.point_failed")
    if failures:
        parts.append(
            format_table(
                ["point", "error"],
                [[e["key"], e["error"]] for e in failures],
                title=f"sweep failures ({len(failures)})",
            )
        )

    hists = serve_batch_hist(events)
    for spec, hist in hists.items():
        parts.append(
            format_table(
                ["batch size", "batches"],
                [[size, hist[size]] for size in sorted(hist)],
                title=f"serve batch-size histogram: {spec}",
            )
        )

    replicas = serve_replica_rows(events)
    if replicas:
        parts.append(
            format_table(
                ["replica", "batches", "requests", "mean batch",
                 "p50 ms", "p99 ms"],
                replicas,
                title="serve cluster replicas (from serve.stats)",
            )
        )

    tiers = registry_tier_rows(events)
    if tiers:
        parts.append(
            format_table(
                ["metric", "value"],
                tiers,
                title="model registry tiers (from the final metrics)",
            )
        )

    warmups = registry_warmup_rows(events)
    if warmups:
        parts.append(
            format_table(
                ["spec", "status"],
                warmups,
                title="background warm-ups (from registry.warmup events)",
            )
        )

    if events_of(events, "explore.start"):
        # Lazy import: repro.explore imports the sweep/serve stack,
        # which in turn journals through this package.
        from repro.explore.report import render_explore

        parts.append(render_explore(events))

    metrics = last_metrics(events)
    if metrics is not None:
        parts.append(render_metrics(metrics))

    ends = events_of(events, "run_end")
    status = ends[-1]["status"] if ends else "(no run_end: crashed or live)"
    parts.append(f"status: {status}")
    return "\n\n".join(parts)


def _scalar_metrics(metrics: Optional[dict]) -> Dict[str, object]:
    if not metrics:
        return {}
    flat: Dict[str, object] = {}
    flat.update(metrics.get("counters", {}))
    flat.update(metrics.get("gauges", {}))
    return flat


def diff_runs(
    run_a: str, run_b: str, results_dir: str = "results"
) -> str:
    """Manifest, per-point accuracy and metric deltas of two runs."""
    events_a = read_events(run_a, results_dir)
    events_b = read_events(run_b, results_dir)
    label_a = os.path.basename(resolve_run_dir(run_a, results_dir))
    label_b = os.path.basename(resolve_run_dir(run_b, results_dir))
    parts: List[str] = []

    manifest_a = (events_of(events_a, "run_start") or [{}])[0]
    manifest_b = (events_of(events_b, "run_start") or [{}])[0]
    rows = []
    for field in ("git_sha", "config_hash", "seed"):
        va, vb = manifest_a.get(field), manifest_b.get(field)
        rows.append([field, va, vb, "same" if va == vb else "DIFFERS"])
    parts.append(
        format_table(
            ["field", label_a, label_b, ""],
            rows,
            title=f"manifest: {label_a} vs {label_b}",
        )
    )

    points_a = {row[0]: row[1] for row in sweep_rows(events_a)}
    points_b = {row[0]: row[1] for row in sweep_rows(events_b)}
    shared = [key for key in points_a if key in points_b]
    if shared:
        rows = []
        for key in shared:
            va, vb = points_a[key], points_b[key]
            delta = (
                vb - va
                if isinstance(va, (int, float)) and isinstance(vb, (int, float))
                else None
            )
            rows.append([key, va, vb, delta])
        parts.append(
            format_table(
                ["point", label_a, label_b, "delta"],
                rows,
                title="sweep accuracy",
            )
        )

    flat_a = _scalar_metrics(last_metrics(events_a))
    flat_b = _scalar_metrics(last_metrics(events_b))
    keys = sorted(set(flat_a) | set(flat_b))
    if keys:
        rows = []
        for key in keys:
            va, vb = flat_a.get(key), flat_b.get(key)
            delta = (
                vb - va
                if isinstance(va, (int, float)) and isinstance(vb, (int, float))
                else None
            )
            rows.append([key, va, vb, delta])
        parts.append(
            format_table(
                ["metric", label_a, label_b, "delta"],
                rows,
                title="final metrics",
            )
        )
    return "\n\n".join(parts)


def render_run_list(results_dir: str = "results") -> str:
    """One line per recorded run under ``<results_dir>/runs``."""
    rows = []
    for run_id in list_runs(results_dir):
        run_dir = os.path.join(results_dir, "runs", run_id)
        try:
            events = read_events(run_dir)
        except Exception:  # noqa: BLE001 - a listing must not die
            rows.append([run_id, "?", "(unreadable)"])
            continue
        ends = events_of(events, "run_end")
        status = ends[-1]["status"] if ends else "live/crashed"
        rows.append([run_id, len(events), status])
    return format_table(
        ["run", "events", "status"],
        rows or [["(no runs recorded)", "", ""]],
        title=f"runs under {os.path.join(results_dir, 'runs')}",
    )
