"""Unified observability: metrics, run journal, trace spans.

One subsystem answers "what ran, how fast, with which config, and what
did it emit" for every layer of the stack:

- :mod:`repro.obs.metrics` — a process-wide :class:`MetricRegistry` of
  counters, gauges and fixed-bucket histograms with labeled children
  (``obs.counter("serve.requests_executed", spec=...)``); lock-guarded,
  numpy-free, cheap enough for per-batch hot paths.
- :mod:`repro.obs.journal` — a :class:`RunJournal` writing one JSONL
  event stream per run under ``results/runs/<run_id>/``: a run-start
  manifest (git SHA, config hash, seed, argv), periodic metric
  snapshots, subsystem events, and a run-end summary.  Atomic
  write-then-rename for manifest/summary; the reader tolerates the
  torn final line a crash leaves.
- :mod:`repro.obs.trace` — nestable, thread-aware :func:`span` brackets
  on the monotonic clock that forward into the op profiler
  (``--profile-ops``), replacing the legacy ``profiler.bracket``.
- :class:`EvalResult` — the one evaluation result shape (accuracy,
  logits hash, wall time, noise seed); a float subclass, so legacy
  call sites are untouched.

The instrumented subsystems — trainer, sweep engine, serving engine
and service, compiled-executor cache — publish through this package
unconditionally; with no active run journal and no profiler the cost
is a global read and a None check.  ``python -m repro.experiments obs
{list,tail,summary,diff}`` renders recorded journals.  See
``docs/observability.md`` for the event schema and the metric naming
convention.
"""

from repro.obs.journal import (
    EVENT_SCHEMAS,
    RunJournal,
    current_journal,
    end_run,
    journal_event,
    list_runs,
    read_events,
    start_run,
    to_jsonable,
    validate_event,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    counter,
    default_registry,
    gauge,
    histogram,
    parse_metric_key,
)
from repro.obs.result import EvalResult
from repro.obs.summary import diff_runs, summarize_run, tail_run
from repro.obs.trace import Span, capture_spans, current_span, span

__all__ = [
    "Counter",
    "EVENT_SCHEMAS",
    "EvalResult",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "RunJournal",
    "Span",
    "capture_spans",
    "counter",
    "current_journal",
    "current_span",
    "default_registry",
    "diff_runs",
    "end_run",
    "gauge",
    "histogram",
    "journal_event",
    "list_runs",
    "read_events",
    "parse_metric_key",
    "span",
    "start_run",
    "summarize_run",
    "tail_run",
    "to_jsonable",
    "validate_event",
]
