"""Reverse-mode autograd engine on top of numpy.

This subpackage is the substrate that replaces PyTorch in the paper's
stack.  :class:`~repro.tensor.tensor.Tensor` wraps a float32 numpy array
and records the operations applied to it; calling
:meth:`~repro.tensor.tensor.Tensor.backward` runs reverse-mode automatic
differentiation through the recorded graph.

:mod:`repro.tensor.functional` provides the neural-network operators
(convolution, pooling, batch norm, losses) and the two non-standard
primitives the paper requires:

- :func:`~repro.tensor.functional.straight_through` — DoReFa's
  straight-through estimator (arbitrary forward, identity backward).
- forward-only additive noise (AMS error injection) falls out of
  ordinary addition with a constant, non-differentiable tensor.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled, tensor
from repro.tensor import functional
from repro.tensor.gradcheck import numerical_gradient, check_gradients

__all__ = [
    "Tensor",
    "tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "numerical_gradient",
    "check_gradients",
]
