"""im2col / col2im transforms for fast convolution on numpy.

Convolution is implemented by unfolding input patches into the columns of
a matrix and performing a single large matrix multiply, the standard
approach for CPU deep-learning kernels.  ``col2im`` is the exact adjoint
of ``im2col`` and is used in the backward pass.

Both transforms draw their workspaces (padded input, patch columns,
scatter-add scratch) from the process-global :class:`~repro.tensor.pool.
BufferPool`, so repeated calls at the same layer shape — the normal case
inside a training loop or an evaluation sweep — are allocation-free.
``im2col`` performs exactly one data copy: the strided patch view is
copied straight into the (pooled) output buffer, with no intermediate
materialisation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ShapeError
from repro.tensor.pool import default_pool
from repro.utils import profiler as _profiler


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"non-positive conv output size for input={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def pad_nchw(x: np.ndarray, padding: Tuple[int, int], pool) -> np.ndarray:
    """Zero-pad an NCHW batch spatially into a pooled buffer.

    Returns ``None`` when ``padding`` is ``(0, 0)`` — callers keep using
    ``x`` directly and skip the release.  Otherwise the returned buffer
    comes from ``pool`` and the caller owns releasing it.  Shared by the
    interpreted :func:`im2col`, the compiled gather plans and the fast
    backend's blocked convolution, so all three pad identically.
    """
    ph, pw = padding
    if not (ph or pw):
        return None
    n, c, h, w = x.shape
    pad_buf = pool.get((n, c, h + 2 * ph, w + 2 * pw), x.dtype)
    pad_buf.fill(0)
    pad_buf[:, :, ph : ph + h, pw : pw + w] = x
    return pad_buf


def im2col(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Unfold an NCHW array into patch columns.

    Returns an array of shape ``(N * out_h * out_w, C * kh * kw)`` whose
    rows are the flattened receptive fields, ordered so that
    ``cols.reshape(N, out_h, out_w, -1)`` recovers spatial layout.

    The returned array comes from the buffer pool; callers that consume
    it within one op (e.g. the conv forward under ``no_grad``) may
    release it back for reuse.
    """
    token = _profiler.op_start()
    pool = default_pool()
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)

    with pool.scope() as scratch:
        pad_buf = pad_nchw(x, (ph, pw), scratch)
        if pad_buf is not None:
            x = pad_buf

        # Strided view: (N, C, out_h, out_w, kh, kw)
        strides = (
            x.strides[0],
            x.strides[1],
            x.strides[2] * sh,
            x.strides[3] * sw,
            x.strides[2],
            x.strides[3],
        )
        patches = np.lib.stride_tricks.as_strided(
            x,
            shape=(n, c, out_h, out_w, kh, kw),
            strides=strides,
            writeable=False,
        )
        # Single copy: gather (N, out_h, out_w, C, kh, kw) straight into
        # the pooled output buffer (the returned cols come from the pool
        # itself, not the scratch scope, so they outlive this block).
        cols = pool.get((n * out_h * out_w, c * kh * kw), x.dtype)
        np.copyto(
            cols.reshape(n, out_h, out_w, c, kh, kw),
            patches.transpose(0, 2, 3, 1, 4, 5),
        )
    _profiler.op_end(token, "im2col")
    return cols


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add patch columns back.

    Given ``cols`` of shape ``(N * out_h * out_w, C * kh * kw)``, returns
    an array of the original shape ``x_shape`` where every patch element
    has been accumulated into its source position.
    """
    token = _profiler.op_start()
    pool = default_pool()
    n, c, h, w = x_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)

    padded = pool.zeros((n, c, h + 2 * ph, w + 2 * pw), cols.dtype)
    patches = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(
        0, 3, 1, 2, 4, 5
    )
    # Accumulate each kernel offset with a strided slice; this loops only
    # over kh*kw (small) rather than over all output positions.
    for i in range(kh):
        h_end = i + sh * out_h
        for j in range(kw):
            w_end = j + sw * out_w
            padded[:, :, i:h_end:sh, j:w_end:sw] += patches[:, :, :, :, i, j]

    if ph or pw:
        # Copy the interior out so the (larger) padded scratch can be
        # recycled instead of staying alive behind a view.
        out = np.empty((n, c, h, w), dtype=cols.dtype)
        np.copyto(out, padded[:, :, ph : ph + h, pw : pw + w])
        pool.release(padded)
    else:
        out = padded
    _profiler.op_end(token, "col2im")
    return out
