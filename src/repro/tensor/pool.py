"""Reusable workspace buffers for the numpy hot paths.

Convolution via im2col allocates large, identically-shaped scratch
arrays (patch columns, padded inputs, gradient columns, AMS noise
samples) on every call.  During a sweep the same layer shapes recur
thousands of times, so the allocator cost and page-fault churn are pure
waste.  :class:`BufferPool` keeps released buffers in per-(shape, dtype)
free lists and hands them back on the next request.

Correctness rules:

- ``get`` returns an *uninitialized* buffer (like ``np.empty``); callers
  must overwrite every element or use :meth:`BufferPool.zeros`.
- ``release`` may only be called with arrays that own their data; views
  are rejected so a pooled buffer can never alias live memory.
- Buffers handed to callers that never release them are simply garbage
  collected — the pool holds references only to *free* buffers.

The pool also counts allocations and reuse hits, which the op profiler
(:mod:`repro.utils.profiler`) reports and the kernel tests use to assert
allocation-free steady states.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Dict, List, Tuple

import numpy as np


class PoolStats:
    """Counters describing pool traffic since the last reset."""

    __slots__ = (
        "allocations",
        "hits",
        "releases",
        "rejected",
        "bytes_allocated",
    )

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.allocations = 0  # fresh numpy allocations through get()
        self.hits = 0  # get() calls served from the free lists
        self.releases = 0  # buffers accepted back
        self.rejected = 0  # release() calls refused (views, over budget)
        self.bytes_allocated = 0  # total bytes of fresh allocations

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"PoolStats({fields})"


_Key = Tuple[Tuple[int, ...], str]


class BufferPool:
    """LIFO free lists of numpy arrays keyed by exact (shape, dtype).

    Parameters
    ----------
    max_bytes:
        Cap on the total bytes parked in the free lists.  Releases that
        would exceed the cap are silently dropped (the array is then
        freed by the garbage collector as usual).
    """

    def __init__(self, max_bytes: int = 256 * 1024 * 1024):
        self.max_bytes = max_bytes
        self.enabled = True
        self.stats = PoolStats()
        self._free: Dict[_Key, List[np.ndarray]] = {}
        self._free_ids: set = set()
        self._pooled_bytes = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def pooled_bytes(self) -> int:
        """Bytes currently parked in the free lists."""
        return self._pooled_bytes

    def get(self, shape, dtype=np.float32) -> np.ndarray:
        """An uninitialized C-contiguous buffer of ``shape`` / ``dtype``."""
        shape = (shape,) if isinstance(shape, int) else tuple(
            int(s) for s in shape
        )
        key = (shape, np.dtype(dtype).str)
        if self.enabled:
            with self._lock:
                bucket = self._free.get(key)
                if bucket:
                    arr = bucket.pop()
                    self._free_ids.discard(id(arr))
                    self._pooled_bytes -= arr.nbytes
                    self.stats.hits += 1
                    return arr
        arr = np.empty(shape, dtype)
        self.stats.allocations += 1
        self.stats.bytes_allocated += arr.nbytes
        return arr

    def zeros(self, shape, dtype=np.float32) -> np.ndarray:
        """A zero-filled buffer (pool-backed ``np.zeros``)."""
        buf = self.get(shape, dtype)
        buf.fill(0)
        return buf

    def release(self, arr: np.ndarray) -> None:
        """Return ``arr`` to the free lists for reuse.

        Only whole, C-contiguous, data-owning arrays are accepted; the
        caller must not touch ``arr`` afterwards.  Double releases and
        over-budget releases are dropped, never an error.
        """
        if not self.enabled or arr is None:
            return
        if not (
            isinstance(arr, np.ndarray)
            and arr.flags.c_contiguous
            and arr.flags.owndata
            and arr.base is None
        ):
            self.stats.rejected += 1
            return
        key = (arr.shape, arr.dtype.str)
        with self._lock:
            if (
                id(arr) in self._free_ids
                or self._pooled_bytes + arr.nbytes > self.max_bytes
            ):
                self.stats.rejected += 1
                return
            self._free.setdefault(key, []).append(arr)
            self._free_ids.add(id(arr))
            self._pooled_bytes += arr.nbytes
            self.stats.releases += 1

    def clear(self) -> None:
        """Drop every pooled buffer (stats are kept; see reset_stats)."""
        with self._lock:
            self._free.clear()
            self._free_ids.clear()
            self._pooled_bytes = 0

    def reset_stats(self) -> None:
        self.stats.reset()

    @contextlib.contextmanager
    def disabled(self):
        """Temporarily bypass pooling (every get allocates fresh)."""
        previous = self.enabled
        self.enabled = False
        try:
            yield self
        finally:
            self.enabled = previous

    @contextlib.contextmanager
    def scope(self):
        """A :class:`PoolScope` that releases its buffers on exit.

        For scratch whose lifetime is one lexical block: every buffer
        drawn through the scope's ``get``/``zeros`` goes back to the
        pool when the block exits — including on exceptions, which a
        manual get/release pair silently leaks to the garbage
        collector.  Buffers meant to outlive the block (results) are
        drawn from the pool itself as usual.
        """
        scope = PoolScope(self)
        try:
            yield scope
        finally:
            scope.release_all()


class PoolScope:
    """Scoped facade over a :class:`BufferPool` (see ``pool.scope()``)."""

    __slots__ = ("pool", "_held")

    def __init__(self, pool: BufferPool):
        self.pool = pool
        self._held: List[np.ndarray] = []

    def get(self, shape, dtype=np.float32) -> np.ndarray:
        buf = self.pool.get(shape, dtype)
        self._held.append(buf)
        return buf

    def zeros(self, shape, dtype=np.float32) -> np.ndarray:
        buf = self.pool.zeros(shape, dtype)
        self._held.append(buf)
        return buf

    def release_all(self) -> None:
        held, self._held = self._held, []
        for buf in reversed(held):
            self.pool.release(buf)


#: Process-global pool used by the conv/noise/optimizer hot paths.
_DEFAULT = BufferPool()


def default_pool() -> BufferPool:
    """The process-global :class:`BufferPool`."""
    return _DEFAULT
