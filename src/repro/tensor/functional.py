"""Neural-network operators built on the autograd :class:`Tensor`.

Heavy operators (convolution, pooling, log-softmax) are implemented as
primitives with hand-written backward closures for speed; everything
else composes differentiable tensor ops.

Two primitives here are specific to the paper's method:

- :func:`straight_through` — arbitrary non-differentiable forward with
  identity backward, the straight-through estimator used by DoReFa
  quantization [28].
- AMS error injection is ordinary addition of a ``requires_grad=False``
  noise tensor, so the error perturbs only the forward pass, exactly as
  in Section 2 of the paper ("we inject this error during only the
  forward pass, leaving the backward pass untouched").
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple, Union

import numpy as np

from repro.errors import ShapeError
from repro.tensor.im2col import col2im, conv_output_size, im2col
from repro.tensor.pool import default_pool
from repro.tensor.tensor import Tensor, _ensure_tensor, is_grad_enabled
from repro.utils import profiler as _profiler

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, int):
        return (value, value)
    return (int(value[0]), int(value[1]))


# ----------------------------------------------------------------------
# convolution
# ----------------------------------------------------------------------
def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> Tensor:
    """2-D cross-correlation over an NCHW input.

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Filters of shape ``(C_out, C_in, kH, kW)``.
    bias:
        Optional per-output-channel bias of shape ``(C_out,)``.
    stride, padding:
        Int or (h, w) pair.
    """
    token = _profiler.op_start()
    stride = _pair(stride)
    padding = _pair(padding)
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ShapeError(
            f"conv2d channel mismatch: input has {c_in}, weight expects {c_in_w}"
        )
    out_h = conv_output_size(h, kh, stride[0], padding[0])
    out_w = conv_output_size(w, kw, stride[1], padding[1])

    cols = im2col(x.data, (kh, kw), stride, padding)  # (N*oh*ow, C*kh*kw)
    w_mat = weight.data.reshape(c_out, -1)  # (C_out, C*kh*kw)
    out = cols @ w_mat.T  # (N*oh*ow, C_out)
    if bias is not None:
        out = out + bias.data
    out = out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)

    if not is_grad_enabled():
        # Inference: skip the backward-closure construction entirely;
        # the patch-column workspace is immediately reusable.
        result = Tensor(out)
        default_pool().release(cols)
        _profiler.op_end(token, "conv2d.forward")
        return result

    x_shape = x.shape

    def grad_x(g: np.ndarray) -> np.ndarray:
        token = _profiler.op_start()
        g_mat = g.transpose(0, 2, 3, 1).reshape(-1, c_out)
        grad_cols = default_pool().get(
            (g_mat.shape[0], w_mat.shape[1]),
            np.result_type(g_mat.dtype, w_mat.dtype),
        )
        np.matmul(g_mat, w_mat, out=grad_cols)
        result = col2im(grad_cols, x_shape, (kh, kw), stride, padding)
        default_pool().release(grad_cols)
        _profiler.op_end(token, "conv2d.grad_x")
        return result

    def grad_w(g: np.ndarray) -> np.ndarray:
        token = _profiler.op_start()
        g_mat = g.transpose(0, 2, 3, 1).reshape(-1, c_out)
        result = (g_mat.T @ cols).reshape(weight.shape)
        _profiler.op_end(token, "conv2d.grad_w")
        return result

    parents = [(x, grad_x), (weight, grad_w)]
    if bias is not None:
        parents.append((bias, lambda g: g.sum(axis=(0, 2, 3))))
    result = Tensor._result(out, parents)
    _profiler.op_end(token, "conv2d.forward")
    return result


# ----------------------------------------------------------------------
# pooling
# ----------------------------------------------------------------------
def max_pool2d(
    x: Tensor, kernel: IntPair, stride: Optional[IntPair] = None,
    padding: IntPair = 0,
) -> Tensor:
    """Max pooling over an NCHW input (supports overlapping windows)."""
    kernel = _pair(kernel)
    stride = kernel if stride is None else _pair(stride)
    padding = _pair(padding)
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel[0], stride[0], padding[0])
    out_w = conv_output_size(w, kernel[1], stride[1], padding[1])

    flat = x.data.reshape(n * c, 1, h, w)
    if padding != (0, 0):
        # Pad with -inf so padding never wins the max.
        flat = np.pad(
            flat,
            ((0, 0), (0, 0), (padding[0], padding[0]), (padding[1], padding[1])),
            mode="constant",
            constant_values=-np.inf,
        )
    cols = im2col(flat, kernel, stride, (0, 0))  # (N*C*oh*ow, kh*kw)
    arg = cols.argmax(axis=1)
    rows = np.arange(cols.shape[0])
    out = cols[rows, arg].reshape(n, c, out_h, out_w)
    cols_shape, cols_dtype = cols.shape, cols.dtype
    # The backward needs only arg, not the column values: recycle now.
    default_pool().release(cols)

    padded_shape = flat.shape

    def grad_x(g: np.ndarray) -> np.ndarray:
        grad_cols = np.zeros(cols_shape, dtype=cols_dtype)
        grad_cols[rows, arg] = g.reshape(-1)
        grad_padded = col2im(grad_cols, padded_shape, kernel, stride, (0, 0))
        grad_padded = grad_padded.reshape(
            n, c, padded_shape[2], padded_shape[3]
        )
        ph, pw = padding
        if ph or pw:
            grad_padded = grad_padded[:, :, ph : ph + h, pw : pw + w]
        return grad_padded

    return Tensor._result(out, [(x, grad_x)])


def avg_pool2d(
    x: Tensor, kernel: IntPair, stride: Optional[IntPair] = None,
    padding: IntPair = 0,
) -> Tensor:
    """Average pooling over an NCHW input."""
    kernel = _pair(kernel)
    stride = kernel if stride is None else _pair(stride)
    padding = _pair(padding)
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel[0], stride[0], padding[0])
    out_w = conv_output_size(w, kernel[1], stride[1], padding[1])
    window = kernel[0] * kernel[1]

    flat = x.data.reshape(n * c, 1, h, w)
    cols = im2col(flat, kernel, stride, padding)
    out = cols.mean(axis=1).reshape(n, c, out_h, out_w)
    # The backward needs only the window size, not the columns.
    default_pool().release(cols)

    flat_shape = flat.shape

    def grad_x(g: np.ndarray) -> np.ndarray:
        grad_cols = np.repeat(
            g.reshape(-1, 1) / window, window, axis=1
        ).astype(g.dtype)
        grad_flat = col2im(grad_cols, flat_shape, kernel, stride, padding)
        return grad_flat.reshape(n, c, h, w)

    return Tensor._result(out, [(x, grad_x)])


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over spatial dims: ``(N, C, H, W) -> (N, C)``."""
    return x.mean(axis=(2, 3))


# ----------------------------------------------------------------------
# linear / normalization
# ----------------------------------------------------------------------
def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with ``weight`` of shape (out, in)."""
    out = x.matmul(weight.T)
    if bias is not None:
        out = out + bias
    return out


def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalization over the channel axis of NCHW (or NC) input.

    In training mode, normalizes with batch statistics and updates
    ``running_mean`` / ``running_var`` in place (exponential moving
    average with ``momentum``, PyTorch convention).  In eval mode, uses
    the running statistics.
    """
    if x.ndim == 4:
        axes = (0, 2, 3)
        view = (1, -1, 1, 1)
    elif x.ndim == 2:
        axes = (0,)
        view = (1, -1)
    else:
        raise ShapeError(f"batch_norm expects 2-D or 4-D input, got {x.shape}")

    if training:
        mean = x.mean(axis=axes, keepdims=True)
        var = x.var(axis=axes, keepdims=True)
        count = x.size // x.shape[1]
        unbiased = var.data * (count / max(count - 1, 1))
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean.data.reshape(-1)
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased.reshape(-1)
        x_hat = (x - mean) / (var + eps).sqrt()
    else:
        mean = Tensor(running_mean.reshape(view))
        std = Tensor(np.sqrt(running_var.reshape(view) + eps))
        x_hat = (x - mean) / std
    return x_hat * gamma.reshape(view) + beta.reshape(view)


# ----------------------------------------------------------------------
# activations
# ----------------------------------------------------------------------
def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def clipped_relu(x: Tensor, ceiling: float = 1.0) -> Tensor:
    """ReLU that also clips at ``ceiling``.

    DoReFa replaces every activation function with a ReLU that clips at
    1, which bounds the next layer's activations to [0, 1] and fixes the
    binary point for the AMS error model (paper Section 2).
    """
    return x.clip(0.0, ceiling)


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid, computed stably via tanh."""
    out_data = 0.5 * (np.tanh(0.5 * x.data) + 1.0)
    return Tensor._result(
        out_data, [(x, lambda g: g * out_data * (1.0 - out_data))]
    )


# ----------------------------------------------------------------------
# losses
# ----------------------------------------------------------------------
def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax primitive."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    softmax = np.exp(out_data)

    def grad_x(g: np.ndarray) -> np.ndarray:
        return g - softmax * g.sum(axis=axis, keepdims=True)

    return Tensor._result(out_data, [(x, grad_x)])


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis``."""
    return log_softmax(x, axis=axis).exp()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between logits (N, K) and integer labels (N,).

    Implemented as a primitive so the backward is the familiar
    ``(softmax - onehot) / N``.
    """
    labels = np.asarray(labels)
    if logits.ndim != 2 or labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
        raise ShapeError(
            f"cross_entropy got logits {logits.shape}, labels {labels.shape}"
        )
    n = logits.shape[0]
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - log_z
    loss = -log_probs[np.arange(n), labels].mean()
    probs = np.exp(log_probs)

    def grad_logits(g: np.ndarray) -> np.ndarray:
        grad = probs.copy()
        grad[np.arange(n), labels] -= 1.0
        return grad * (g / n)

    return Tensor._result(
        np.asarray(loss, dtype=logits.dtype), [(logits, grad_logits)]
    )


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    target = _ensure_tensor(target)
    diff = pred - target
    return (diff * diff).mean()


# ----------------------------------------------------------------------
# estimator primitives
# ----------------------------------------------------------------------
def straight_through(x: Tensor, forward_fn: Callable[[np.ndarray], np.ndarray]) -> Tensor:
    """Apply ``forward_fn`` to the values; backpropagate identity.

    This is the straight-through estimator (STE): the forward pass sees
    the (typically non-differentiable) quantized values while the
    backward pass treats the op as the identity, which is how DoReFa
    trains through its quantizers.
    """
    out_data = np.asarray(forward_fn(x.data), dtype=x.dtype)
    if out_data.shape != x.shape:
        raise ShapeError(
            "straight_through forward_fn changed shape "
            f"{x.shape} -> {out_data.shape}"
        )
    return Tensor._result(out_data, [(x, lambda g: g)])


def add_forward_noise(x: Tensor, noise: np.ndarray) -> Tensor:
    """Add a fixed noise sample to the forward value; identity backward.

    Because ``noise`` is a constant w.r.t. the graph, d(out)/d(x) is
    exactly 1 — the backward pass is untouched, matching the paper's
    injection scheme.
    """
    noise = np.asarray(noise, dtype=x.dtype)
    return Tensor._result(x.data + noise, [(x, lambda g: g)])


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout; identity in eval mode."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep
    return Tensor._result(x.data * mask, [(x, lambda g: g * mask)])
