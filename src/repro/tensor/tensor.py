"""The :class:`Tensor` class and the reverse-mode autograd engine.

A :class:`Tensor` wraps a numpy array (float32 by default) together with
an optional gradient and a record of how it was produced.  Operations on
tensors build a DAG; :meth:`Tensor.backward` topologically sorts the DAG
and accumulates gradients into every leaf tensor that has
``requires_grad=True``.

Design notes
------------
- Gradients are plain numpy arrays, not tensors; second-order autograd is
  out of scope (the paper needs only first-order training).
- Broadcasting follows numpy semantics; gradients are sum-reduced back to
  the parent shape by :func:`_sum_to_shape`.
- A global flag (:func:`no_grad`) disables graph recording during
  evaluation, which keeps validation passes cheap.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import GradientError, ShapeError

DEFAULT_DTYPE = np.float32

_state = threading.local()


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return getattr(_state, "grad_enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables autograd graph recording.

    Inside the block, operations produce tensors with
    ``requires_grad=False`` and no parents, exactly like
    ``torch.no_grad``.
    """
    previous = is_grad_enabled()
    _state.grad_enabled = False
    try:
        yield
    finally:
        _state.grad_enabled = previous


def _as_array(value, dtype=DEFAULT_DTYPE) -> np.ndarray:
    """Coerce scalars / lists / arrays to a numpy array of ``dtype``."""
    if isinstance(value, np.ndarray):
        if value.dtype == dtype:
            return value
        return value.astype(dtype)
    return np.asarray(value, dtype=dtype)


def _sum_to_shape(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce a broadcast gradient back down to ``shape``.

    numpy broadcasting can expand a parent of shape ``shape`` to the
    output shape; the gradient flowing back must be summed over the
    broadcast axes so that ``grad.shape == shape``.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(
        i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1
    )
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    if grad.shape != shape:
        raise ShapeError(
            f"cannot reduce gradient of shape {grad.shape} to {shape}"
        )
    return grad


GradFn = Callable[[np.ndarray], np.ndarray]


class Tensor:
    """A numpy-backed array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything convertible to a numpy array.  Stored as float32 unless
        another dtype is given.
    requires_grad:
        If True, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    name:
        Optional label used in ``repr`` and error messages.
    """

    __slots__ = ("data", "grad", "requires_grad", "name", "_parents")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        self.data: np.ndarray = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad) and is_grad_enabled()
        self.name = name
        # Sequence of (parent, grad_fn) pairs; grad_fn maps the gradient
        # w.r.t. this tensor to the gradient contribution for the parent.
        self._parents: Tuple[Tuple["Tensor", GradFn], ...] = ()

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return (
            f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}"
            f"{label})"
        )

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a float."""
        if self.data.size != 1:
            raise ShapeError(
                f"item() requires a 1-element tensor, got shape {self.shape}"
            )
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    # ------------------------------------------------------------------
    # graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _result(
        data: np.ndarray,
        parents: Sequence[Tuple["Tensor", GradFn]],
    ) -> "Tensor":
        """Create an op result, wiring parents only if grad is enabled."""
        if not is_grad_enabled():
            # Inference fast path: no parent filtering, no closure
            # bookkeeping — just wrap the data.
            return Tensor(data)
        tracked = [(p, fn) for p, fn in parents if p.requires_grad]
        out = Tensor(data, requires_grad=bool(tracked))
        out._parents = tuple(tracked)
        return out

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor.  Defaults
            to ones; for a scalar loss simply call ``loss.backward()``.
        """
        if not self.requires_grad:
            raise GradientError(
                "backward() called on a tensor that does not require grad"
            )
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad, self.data.dtype)
            if grad.shape != self.shape:
                raise ShapeError(
                    f"backward grad shape {grad.shape} != tensor shape {self.shape}"
                )

        order = self._topological_order()
        grads: dict = {id(self): grad}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if not node._parents:
                # Leaf: accumulate.
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
                continue
            for parent, grad_fn in node._parents:
                contribution = grad_fn(node_grad)
                existing = grads.get(id(parent))
                grads[id(parent)] = (
                    contribution if existing is None else existing + contribution
                )

    def _topological_order(self) -> list:
        """Return nodes reachable from ``self`` in reverse topological order."""
        order: list = []
        visited: set = set()
        stack: list = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent, _ in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        order.reverse()
        return order

    # ------------------------------------------------------------------
    # elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = _ensure_tensor(other)
        out_data = self.data + other.data
        return Tensor._result(
            out_data,
            [
                (self, lambda g: _sum_to_shape(g, self.shape)),
                (other, lambda g: _sum_to_shape(g, other.shape)),
            ],
        )

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return Tensor._result(-self.data, [(self, lambda g: -g)])

    def __sub__(self, other) -> "Tensor":
        other = _ensure_tensor(other)
        return Tensor._result(
            self.data - other.data,
            [
                (self, lambda g: _sum_to_shape(g, self.shape)),
                (other, lambda g: _sum_to_shape(-g, other.shape)),
            ],
        )

    def __rsub__(self, other) -> "Tensor":
        return _ensure_tensor(other) - self

    def __mul__(self, other) -> "Tensor":
        other = _ensure_tensor(other)
        return Tensor._result(
            self.data * other.data,
            [
                (self, lambda g: _sum_to_shape(g * other.data, self.shape)),
                (other, lambda g: _sum_to_shape(g * self.data, other.shape)),
            ],
        )

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = _ensure_tensor(other)
        return Tensor._result(
            self.data / other.data,
            [
                (self, lambda g: _sum_to_shape(g / other.data, self.shape)),
                (
                    other,
                    lambda g: _sum_to_shape(
                        -g * self.data / (other.data * other.data), other.shape
                    ),
                ),
            ],
        )

    def __rtruediv__(self, other) -> "Tensor":
        return _ensure_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent
        return Tensor._result(
            out_data,
            [(self, lambda g: g * exponent * self.data ** (exponent - 1))],
        )

    # comparison helpers (non-differentiable, return numpy arrays)
    def __gt__(self, other) -> np.ndarray:
        return self.data > _raw(other)

    def __lt__(self, other) -> np.ndarray:
        return self.data < _raw(other)

    def __ge__(self, other) -> np.ndarray:
        return self.data >= _raw(other)

    def __le__(self, other) -> np.ndarray:
        return self.data <= _raw(other)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.shape

        def grad_fn(g: np.ndarray) -> np.ndarray:
            if axis is None:
                return np.broadcast_to(g, shape).astype(g.dtype, copy=False)
            if not keepdims:
                g = np.expand_dims(g, axis)
            return np.broadcast_to(g, shape)

        return Tensor._result(out_data, [(self, grad_fn)])

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Population variance (ddof=0), differentiable."""
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return out

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def grad_fn(g: np.ndarray) -> np.ndarray:
            expanded = out_data
            grad = g
            if axis is not None and not keepdims:
                expanded = np.expand_dims(out_data, axis)
                grad = np.expand_dims(g, axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            # Split gradient evenly among ties, matching numpy-style subgradient.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            return mask * grad / counts

        return Tensor._result(out_data, [(self, grad_fn)])

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        out_data = self.data.reshape(shape)
        return Tensor._result(
            out_data, [(self, lambda g: g.reshape(original))]
        )

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = tuple(np.argsort(axes))
        return Tensor._result(
            self.data.transpose(axes),
            [(self, lambda g: g.transpose(inverse))],
        )

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        shape = self.shape
        dtype = self.dtype

        def grad_fn(g: np.ndarray) -> np.ndarray:
            full = np.zeros(shape, dtype=dtype)
            np.add.at(full, index, g)
            return full

        return Tensor._result(out_data, [(self, grad_fn)])

    # ------------------------------------------------------------------
    # elementwise math
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        return Tensor._result(out_data, [(self, lambda g: g * out_data)])

    def log(self) -> "Tensor":
        return Tensor._result(
            np.log(self.data), [(self, lambda g: g / self.data)]
        )

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)
        return Tensor._result(
            out_data, [(self, lambda g: g * 0.5 / out_data)]
        )

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        return Tensor._result(
            out_data, [(self, lambda g: g * (1.0 - out_data * out_data))]
        )

    def abs(self) -> "Tensor":
        return Tensor._result(
            np.abs(self.data), [(self, lambda g: g * np.sign(self.data))]
        )

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to ``[low, high]``; gradient is zero outside."""
        out_data = np.clip(self.data, low, high)
        mask = ((self.data >= low) & (self.data <= high)).astype(self.dtype)
        return Tensor._result(out_data, [(self, lambda g: g * mask)])

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(self.dtype)
        return Tensor._result(self.data * mask, [(self, lambda g: g * mask)])

    # ------------------------------------------------------------------
    # linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other = _ensure_tensor(other)
        if self.ndim != 2 or other.ndim != 2:
            raise ShapeError(
                f"matmul expects 2-D operands, got {self.shape} @ {other.shape}"
            )
        out_data = self.data @ other.data
        return Tensor._result(
            out_data,
            [
                (self, lambda g: g @ other.data.T),
                (other, lambda g: self.data.T @ g),
            ],
        )

    __matmul__ = matmul


def _raw(value) -> np.ndarray:
    return value.data if isinstance(value, Tensor) else np.asarray(value)


def _ensure_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def tensor(data, requires_grad: bool = False, name: str = "") -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad, name=name)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [_ensure_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    parents = []
    offset = 0
    for t in tensors:
        width = t.shape[axis]
        start, stop = offset, offset + width

        def grad_fn(g: np.ndarray, start=start, stop=stop) -> np.ndarray:
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(start, stop)
            return g[tuple(slicer)]

        parents.append((t, grad_fn))
        offset = stop
    return Tensor._result(out_data, parents)


def pad2d(x: Tensor, padding: Union[int, Tuple[int, int]]) -> Tensor:
    """Zero-pad the last two (spatial) axes of an NCHW tensor."""
    if isinstance(padding, int):
        ph = pw = padding
    else:
        ph, pw = padding
    if ph == 0 and pw == 0:
        return x
    out_data = np.pad(
        x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)), mode="constant"
    )

    def grad_fn(g: np.ndarray) -> np.ndarray:
        return g[:, :, ph : g.shape[2] - ph, pw : g.shape[3] - pw]

    return Tensor._result(out_data, [(x, grad_fn)])
