"""Numerical gradient checking for the autograd engine.

Used by the test suite to validate every primitive's backward pass
against central finite differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    tensors: Sequence[Tensor],
    index: int,
    eps: float = 1e-3,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*tensors))`` w.r.t. one input.

    Parameters
    ----------
    fn:
        Function of the given tensors returning a Tensor.
    tensors:
        All tensor inputs to ``fn``.
    index:
        Which input to differentiate with respect to.
    eps:
        Finite-difference step (float32 arithmetic needs a fairly large
        step; 1e-3 is a good default).
    """
    target = tensors[index]
    flat = target.data.reshape(-1)
    grad = np.zeros_like(flat, dtype=np.float64)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*tensors).data.sum())
        flat[i] = original - eps
        minus = float(fn(*tensors).data.sum())
        flat[i] = original
        grad[i] = (plus - minus) / (2.0 * eps)
    return grad.reshape(target.shape).astype(np.float32)


def check_gradients(
    fn: Callable[..., Tensor],
    tensors: Sequence[Tensor],
    atol: float = 1e-2,
    rtol: float = 1e-2,
    eps: float = 1e-3,
) -> None:
    """Assert analytic gradients match finite differences for all inputs.

    Raises ``AssertionError`` with a diagnostic message on mismatch.
    """
    for t in tensors:
        t.zero_grad()
    out = fn(*tensors)
    out.sum().backward()
    for i, t in enumerate(tensors):
        if not t.requires_grad:
            continue
        numeric = numerical_gradient(fn, tensors, i, eps=eps)
        analytic = t.grad
        assert analytic is not None, f"input {i} got no gradient"
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch on input {i}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
