"""Energy-accuracy tradeoff analysis (paper Fig. 8 and Section 4).

The paper measures accuracy loss vs ``ENOB_VMAC`` at ``Nmult = 8``
(Fig. 4), then populates the whole ``(ENOB, Nmult)`` design space by the
Eq. 2 equivalence (equal injected error <=> equal accuracy).  Overlaying
the Eq. 3-4 energy model shows that accuracy-loss and minimum-E_MAC
level curves are parallel in the thermal-noise-limited region: there is
no (ENOB, Nmult) pair that improves one without harming the other.

:class:`AccuracyCurve` wraps the measured loss-vs-ENOB data;
:class:`TradeoffGrid` produces the Fig. 8 grid, the level-curve
parallelism check, and the headline "minimum energy for a given
accuracy loss" numbers (~313 fJ/MAC for <0.4% on the paper's setup).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.ams.vmac import equivalent_enob
from repro.energy.emac import EnergyModel
from repro.errors import ConfigError


@dataclass
class AccuracyCurve:
    """Measured top-1 accuracy loss vs ENOB at a reference Nmult.

    Parameters
    ----------
    enobs:
        ENOB values (need not be sorted).
    losses:
        Accuracy loss (fraction, e.g. 0.004 for 0.4%) at each ENOB.
    reference_nmult:
        The Nmult the measurements were taken at (paper: 8).

    Loss is made non-increasing in ENOB (a running maximum swept from
    the high-ENOB end toward low ENOB) before interpolation, since
    measurement noise can produce tiny inversions that would break
    inversion queries.  Duplicate ENOB values are collapsed to the
    maximum loss measured at that ENOB — the conservative choice,
    consistent with the monotone envelope — so the curve is independent
    of input ordering (``np.interp`` over duplicated x is
    order-dependent).
    """

    enobs: np.ndarray
    losses: np.ndarray
    reference_nmult: int = 8

    def __post_init__(self):
        enobs = np.asarray(self.enobs, dtype=np.float64)
        losses = np.asarray(self.losses, dtype=np.float64)
        if enobs.shape != losses.shape or enobs.ndim != 1 or enobs.size < 2:
            raise ConfigError("need matching 1-D enob/loss arrays (>= 2 points)")
        order = np.argsort(enobs, kind="stable")
        enobs = enobs[order]
        losses = losses[order]
        # Collapse duplicate ENOBs deterministically: keep the worst
        # (maximum) loss measured at each ENOB, matching the
        # conservative monotone envelope below.
        unique_enobs, inverse = np.unique(enobs, return_inverse=True)
        if unique_enobs.size != enobs.size:
            collapsed = np.full(unique_enobs.size, -np.inf)
            np.maximum.at(collapsed, inverse, losses)
            enobs, losses = unique_enobs, collapsed
            if enobs.size < 2:
                raise ConfigError(
                    "need >= 2 distinct enob values after collapsing "
                    "duplicates"
                )
        # Enforce monotone non-increasing loss in ENOB: sweep from the
        # high-ENOB end taking a running max, so each lower-ENOB point
        # is at least as lossy as everything to its right.
        losses = np.maximum.accumulate(losses[::-1])[::-1]
        self.enobs = enobs
        self.losses = losses

    def loss_at(self, enob: float, nmult: int = None) -> float:
        """Interpolated accuracy loss at (enob, nmult).

        If ``nmult`` differs from the reference, the query is mapped
        through the Eq. 2 equivalence first.  Queries outside the
        measured range clamp to the boundary losses.
        """
        if nmult is not None and nmult != self.reference_nmult:
            enob = equivalent_enob(enob, nmult, self.reference_nmult)
        return float(np.interp(enob, self.enobs, self.losses))

    def required_enob(self, max_loss: float) -> float:
        """Smallest reference-Nmult ENOB achieving loss <= ``max_loss``.

        Returns the exact piecewise-linear crossing of the interpolated
        curve (historically this searched a fixed 2001-point grid and
        could be off by up to one grid step).  The result satisfies
        ``loss_at(required_enob(x)) <= x`` exactly.

        Raises :class:`~repro.errors.ConfigError` when the curve never
        reaches the target (hardware cannot hit that accuracy in the
        measured range).
        """
        if self.losses[-1] > max_loss:
            raise ConfigError(
                f"target loss {max_loss} unreachable; best measured is "
                f"{self.losses[-1]:.4f} at ENOB {self.enobs[-1]}"
            )
        # Loss is non-increasing in enob, so the first measured point
        # already at or below the target brackets the crossing.
        idx = int(np.argmax(self.losses <= max_loss))
        if idx == 0:
            return float(self.enobs[0])
        e_lo, e_hi = self.enobs[idx - 1], self.enobs[idx]
        l_lo, l_hi = self.losses[idx - 1], self.losses[idx]
        if l_lo == l_hi:
            return float(e_hi)
        crossing = e_lo + (e_hi - e_lo) * (l_lo - max_loss) / (l_lo - l_hi)
        crossing = float(np.clip(crossing, e_lo, e_hi))
        # Rounding in the division can land a hair on the lossy side of
        # the crossing; nudge right until the contract holds.
        while self.loss_at(crossing) > max_loss:
            crossing = float(np.nextafter(crossing, e_hi))
        return crossing


@dataclass(frozen=True)
class GridCell:
    """One (ENOB, Nmult) cell of the Fig. 8 lookup table."""

    enob: float
    nmult: int
    loss: float
    emac_pj: float


class TradeoffGrid:
    """The Fig. 8 lookup table and its derived analyses.

    "This plot can be used as a lookup table by circuit designers to
    evaluate the network-level impact of circuit-level design choices,
    or by system designers to choose hardware based on accuracy or
    energy specifications."
    """

    def __init__(
        self,
        curve: AccuracyCurve,
        energy_model: EnergyModel = EnergyModel(),
    ):
        self.curve = curve
        self.energy_model = energy_model

    # ------------------------------------------------------------------
    def cell(self, enob: float, nmult: int) -> GridCell:
        """Loss and energy for one design point."""
        return GridCell(
            enob=enob,
            nmult=nmult,
            loss=self.curve.loss_at(enob, nmult),
            emac_pj=self.energy_model.emac(enob, nmult),
        )

    def grid(
        self, enobs: Sequence[float], nmults: Sequence[int]
    ) -> List[List[GridCell]]:
        """Full 2-D table: rows indexed by nmult, columns by enob."""
        return [[self.cell(e, n) for e in enobs] for n in nmults]

    # ------------------------------------------------------------------
    def min_emac_for_loss(
        self, max_loss: float, nmult_candidates: Sequence[int] = None
    ) -> Tuple[float, GridCell]:
        """Minimum energy per MAC achieving ``loss <= max_loss``.

        For each candidate Nmult, find the minimum ENOB meeting the
        accuracy target (via the Eq. 2 equivalence) and its energy; the
        overall minimum is the paper's ``E_MAC,min``.  Returns
        ``(emac_pj, best_cell)``.
        """
        if nmult_candidates is None:
            nmult_candidates = [2**k for k in range(0, 11)]
        ref_enob = self.curve.required_enob(max_loss)
        best: Tuple[float, GridCell] = None
        for nmult in nmult_candidates:
            # Equal-error ENOB at this nmult (inverse of equivalent_enob).
            enob = ref_enob - 0.5 * np.log2(self.curve.reference_nmult / nmult)
            if enob <= 0:
                continue
            energy = self.energy_model.emac(float(enob), int(nmult))
            cell = GridCell(float(enob), int(nmult), max_loss, energy)
            if best is None or energy < best[0]:
                best = (energy, cell)
        if best is None:
            raise ConfigError("no feasible design point")
        return best

    # ------------------------------------------------------------------
    def iso_loss_contour(
        self, max_loss: float, nmults: Sequence[int]
    ) -> List[GridCell]:
        """The (ENOB, Nmult) points holding accuracy loss at ``max_loss``.

        In the thermal-noise-limited region all cells on this contour
        share (nearly) the same E_MAC — the paper's "level curves are
        parallel" observation.
        """
        ref_enob = self.curve.required_enob(max_loss)
        cells = []
        for nmult in nmults:
            enob = ref_enob - 0.5 * np.log2(self.curve.reference_nmult / nmult)
            cells.append(
                GridCell(
                    float(enob),
                    int(nmult),
                    max_loss,
                    self.energy_model.emac(float(enob), int(nmult)),
                )
            )
        return cells

    def level_curve_parallelism(
        self, max_loss: float, nmults: Sequence[int]
    ) -> float:
        """Max relative E_MAC spread along an iso-loss contour.

        Restricted to thermal-limited cells (ENOB above the energy
        model's library knee), the paper predicts this is ~0
        (one-to-one energy-accuracy relation).
        """
        knee = self.energy_model.library.knee_enob
        cells = [
            c
            for c in self.iso_loss_contour(max_loss, nmults)
            if c.enob > knee
        ]
        if len(cells) < 2:
            return 0.0
        energies = np.array([c.emac_pj for c in cells])
        return float((energies.max() - energies.min()) / energies.min())
