"""Synthetic ADC survey (stand-in for Murmann's survey data, Fig. 7).

Murmann's survey spreadsheet is not redistributable/available offline,
so this module generates a statistically similar scatter: hundreds of
published-converter points (energy per Nyquist sample vs ENOB at high
input frequency), tagged by architecture and venue era, all lying on or
above the paper's Eq. 3 bound.  The generated survey preserves the two
features Fig. 7 exists to show:

1. a flat energy floor at low/mid resolutions; and
2. a thermal-noise wall (energy quadruples per extra bit) above
   ~10.5 ENOB, i.e. the Schreier-FOM frontier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.energy.adc import adc_energy_array, schreier_fom

#: Architecture classes with their typical resolution ranges (ENOB) and
#: how far above the frontier their designs usually land (log10 pJ).
_ARCHITECTURES = (
    ("flash", 3.0, 7.0, 0.6),
    ("SAR", 5.0, 12.0, 0.35),
    ("pipeline", 8.0, 14.0, 0.55),
    ("delta-sigma", 10.0, 19.0, 0.5),
)


@dataclass(frozen=True)
class SurveyPoint:
    """One published-design data point of the (synthetic) survey."""

    enob: float
    energy_pj: float
    architecture: str
    venue: str
    year: int

    @property
    def fom_schreier_db(self) -> float:
        return schreier_fom(self.energy_pj, self.enob)


class SyntheticADCSurvey:
    """Deterministic synthetic ADC survey.

    Parameters
    ----------
    points_per_architecture:
        Scatter density; the real survey has ~600 points across
        ISSCC/VLSI 1997-2018.
    seed:
        Generation seed.
    """

    def __init__(self, points_per_architecture: int = 120, seed: int = 7):
        rng = np.random.default_rng(seed)
        self.points: List[SurveyPoint] = []
        for arch, lo, hi, spread in _ARCHITECTURES:
            enobs = rng.uniform(lo, hi, size=points_per_architecture)
            bound = adc_energy_array(enobs)
            # Log-normal excess above the frontier; only the very best
            # designs touch the bound.
            excess = rng.lognormal(mean=spread, sigma=0.55, size=enobs.shape)
            energies = bound * (1.0 + excess)
            venues = rng.choice(["ISSCC", "VLSI"], size=enobs.shape)
            years = rng.integers(1997, 2019, size=enobs.shape)
            for e, p, v, y in zip(enobs, energies, venues, years):
                self.points.append(
                    SurveyPoint(
                        enob=float(e),
                        energy_pj=float(p),
                        architecture=arch,
                        venue=str(v),
                        year=int(y),
                    )
                )

    def __len__(self) -> int:
        return len(self.points)

    def enobs(self) -> np.ndarray:
        return np.array([p.enob for p in self.points])

    def energies_pj(self) -> np.ndarray:
        return np.array([p.energy_pj for p in self.points])

    def frontier(self, enob_grid: Sequence[float]) -> np.ndarray:
        """The Eq. 3 bound evaluated on ``enob_grid`` (pJ)."""
        return adc_energy_array(np.asarray(enob_grid, dtype=np.float64))

    def violations(self) -> List[SurveyPoint]:
        """Points below the bound (should be empty by construction)."""
        bound = adc_energy_array(self.enobs())
        return [
            p
            for p, b in zip(self.points, bound)
            if p.energy_pj < b * (1.0 - 1e-9)
        ]

    def best_fom_db(self) -> float:
        """Best (highest) Schreier FOM across the survey."""
        return max(p.fom_schreier_db for p in self.points)
