"""ADC energy model (paper Eq. 3, from Murmann's survey [30]).

The paper bounds state-of-the-art ADC energy per conversion as

    E_ADC(ENOB) >= 0.3 pJ                                 ENOB <= 10.5
    E_ADC(ENOB) >= 10^(0.1 * (6.02 * ENOB - 68.25)) pJ    ENOB >  10.5

The low-resolution regime is roughly energy-flat (architecture/overhead
limited); above ~10.5 effective bits designs are thermal-noise limited
and energy quadruples per extra bit (the Schreier-FOM slope).  The two
branches meet approximately at ENOB = 10.5 (0.300 vs 0.313 pJ — the
paper's constants leave a ~4% seam at the knee).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigError

#: ENOB where the survey bound transitions from flat to thermal-limited.
THERMAL_KNEE_ENOB = 10.5

#: Energy floor of the flat region, in pJ per conversion.
FLAT_ENERGY_PJ = 0.3

#: Slope/intercept of the thermal-limited branch (dB form of Eq. 3).
_SLOPE_DB_PER_BIT = 6.02
_INTERCEPT_DB = 68.25


def adc_energy(enob: float) -> float:
    """Lower bound on ADC energy per conversion, in pJ (Eq. 3)."""
    if enob <= 0:
        raise ConfigError(f"ENOB must be positive, got {enob}")
    if enob <= THERMAL_KNEE_ENOB:
        return FLAT_ENERGY_PJ
    return 10.0 ** (0.1 * (_SLOPE_DB_PER_BIT * enob - _INTERCEPT_DB))


def adc_energy_array(enob: np.ndarray) -> np.ndarray:
    """Vectorized :func:`adc_energy`."""
    enob = np.asarray(enob, dtype=np.float64)
    if np.any(enob <= 0):
        raise ConfigError("ENOB values must be positive")
    thermal = 10.0 ** (0.1 * (_SLOPE_DB_PER_BIT * enob - _INTERCEPT_DB))
    return np.where(enob <= THERMAL_KNEE_ENOB, FLAT_ENERGY_PJ, thermal)


def sndr_from_enob(enob: float) -> float:
    """SNDR in dB for a given effective number of bits."""
    return 6.02 * enob + 1.76


def enob_from_sndr(sndr_db: float) -> float:
    """Effective number of bits for a given SNDR in dB."""
    return (sndr_db - 1.76) / 6.02


def schreier_fom(energy_pj: float, enob: float) -> float:
    """Schreier figure of merit (dB) for energy-per-conversion ``P/f_snyq``.

    ``FOM_S = SNDR + 10 log10( (f_s/2) / P ) = SNDR - 10 log10(2 E)``
    with E in joules.  Higher is better; the survey's best designs sit
    near ~185 dB (the paper draws a "slightly shifted" 187 dB line).
    """
    if energy_pj <= 0:
        raise ConfigError("energy must be positive")
    energy_joules = energy_pj * 1e-12
    return sndr_from_enob(enob) - 10.0 * math.log10(2.0 * energy_joules)
