"""ADC energy model (paper Eq. 3, from Murmann's survey [30]).

The paper bounds state-of-the-art ADC energy per conversion as

    E_ADC(ENOB) >= 0.3 pJ                                 ENOB <= 10.5
    E_ADC(ENOB) >= 10^(0.1 * (6.02 * ENOB - 68.25)) pJ    ENOB >  10.5

The low-resolution regime is roughly energy-flat (architecture/overhead
limited); above ~10.5 effective bits designs are thermal-noise limited
and energy quadruples per extra bit (the Schreier-FOM slope).  The two
branches meet approximately at ENOB = 10.5 (0.300 vs 0.313 pJ — the
paper's constants leave a ~4% seam at the knee).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

#: ENOB where the survey bound transitions from flat to thermal-limited.
THERMAL_KNEE_ENOB = 10.5

#: Energy floor of the flat region, in pJ per conversion.
FLAT_ENERGY_PJ = 0.3

#: Slope/intercept of the thermal-limited branch (dB form of Eq. 3).
_SLOPE_DB_PER_BIT = 6.02
_INTERCEPT_DB = 68.25


def adc_energy(enob: float) -> float:
    """Lower bound on ADC energy per conversion, in pJ (Eq. 3)."""
    if enob <= 0:
        raise ConfigError(f"ENOB must be positive, got {enob}")
    if enob <= THERMAL_KNEE_ENOB:
        return FLAT_ENERGY_PJ
    return 10.0 ** (0.1 * (_SLOPE_DB_PER_BIT * enob - _INTERCEPT_DB))


def adc_energy_array(enob: np.ndarray) -> np.ndarray:
    """Vectorized :func:`adc_energy`."""
    enob = np.asarray(enob, dtype=np.float64)
    if np.any(enob <= 0):
        raise ConfigError("ENOB values must be positive")
    thermal = 10.0 ** (0.1 * (_SLOPE_DB_PER_BIT * enob - _INTERCEPT_DB))
    return np.where(enob <= THERMAL_KNEE_ENOB, FLAT_ENERGY_PJ, thermal)


@dataclass(frozen=True)
class ADCLibrary:
    """A parameterized Eq. 3 energy bound: flat floor meeting a slope.

    The default instance reproduces the paper's survey bound
    (:func:`adc_energy`) bit for bit.  A *custom* library moves the
    knobs — the flat/thermal knee, the flat-region floor, the
    thermal-branch slope/intercept — so the explorer
    (:mod:`repro.explore`) can evaluate design spaces whose interesting
    region is not pinned at the survey's ENOB ~10.5 knee.

    ``reference_scale`` models the paper's Section 4 reference-voltage
    scaling: an ADC whose reference is scaled to ``alpha`` of the
    multiplier supply keeps its conversion cost in the flat
    (architecture-limited) branch, but in the thermal-noise-limited
    branch the reduced signal swing costs ``1/alpha^2`` in energy to
    hold the same SNDR (the Schreier-FOM tradeoff).  The matching
    accuracy-side effect is the registered ``reference_scaled`` error
    model (:mod:`repro.ams.zoo`).
    """

    name: str = "survey"
    knee_enob: float = THERMAL_KNEE_ENOB
    flat_energy_pj: float = FLAT_ENERGY_PJ
    slope_db_per_bit: float = _SLOPE_DB_PER_BIT
    intercept_db: float = _INTERCEPT_DB
    reference_scale: float = 1.0

    def __post_init__(self):
        if self.knee_enob <= 0:
            raise ConfigError(
                f"knee_enob must be positive, got {self.knee_enob}"
            )
        if self.flat_energy_pj <= 0:
            raise ConfigError(
                f"flat_energy_pj must be positive, got {self.flat_energy_pj}"
            )
        if self.slope_db_per_bit <= 0:
            raise ConfigError(
                "slope_db_per_bit must be positive, got "
                f"{self.slope_db_per_bit}"
            )
        if not 0.0 < self.reference_scale <= 1.0:
            raise ConfigError(
                "reference_scale must be in (0, 1], got "
                f"{self.reference_scale}"
            )

    def energy(self, enob: float) -> float:
        """Energy per conversion in pJ under this library's bound."""
        if enob <= 0:
            raise ConfigError(f"ENOB must be positive, got {enob}")
        if enob <= self.knee_enob:
            return self.flat_energy_pj
        thermal = 10.0 ** (
            0.1 * (self.slope_db_per_bit * enob - self.intercept_db)
        )
        return thermal / (self.reference_scale**2)

    def energy_array(self, enob: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`energy`."""
        enob = np.asarray(enob, dtype=np.float64)
        if np.any(enob <= 0):
            raise ConfigError("ENOB values must be positive")
        thermal = 10.0 ** (
            0.1 * (self.slope_db_per_bit * enob - self.intercept_db)
        ) / (self.reference_scale**2)
        return np.where(enob <= self.knee_enob, self.flat_energy_pj, thermal)

    @classmethod
    def survey(cls) -> "ADCLibrary":
        """The paper's survey bound (the default instance)."""
        return cls()


def sndr_from_enob(enob: float) -> float:
    """SNDR in dB for a given effective number of bits."""
    return 6.02 * enob + 1.76


def enob_from_sndr(sndr_db: float) -> float:
    """Effective number of bits for a given SNDR in dB."""
    return (sndr_db - 1.76) / 6.02


def schreier_fom(energy_pj: float, enob: float) -> float:
    """Schreier figure of merit (dB) for energy-per-conversion ``P/f_snyq``.

    ``FOM_S = SNDR + 10 log10( (f_s/2) / P ) = SNDR - 10 log10(2 E)``
    with E in joules.  Higher is better; the survey's best designs sit
    near ~185 dB (the paper draws a "slightly shifted" 187 dB line).
    """
    if energy_pj <= 0:
        raise ConfigError("energy must be positive")
    energy_joules = energy_pj * 1e-12
    return sndr_from_enob(enob) - 10.0 * math.log10(2.0 * energy_joules)
