"""Network-level energy accounting.

The paper reports energy per MAC (Eq. 4); a system designer wants energy
per *inference*.  This module profiles a model's compute layers (MACs,
``Ntot``, VMAC conversions per output) via forward hooks and combines
the profile with the Eq. 3-4 energy model:

    E_inference = sum over layers of  MACs(layer) * E_MAC(ENOB, Nmult)

For the paper's ResNet-50 at 224x224 (≈4.1 GMACs), the <0.4%-loss
operating point (~313 fJ/MAC) prices an inference at ≈1.3 mJ of
computation energy — the kind of headline number this API produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ams.vmac import VMACConfig
from repro.energy.emac import EnergyModel
from repro.errors import ConfigError
from repro.nn.conv import Conv2d
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.tensor.tensor import Tensor, no_grad


@dataclass(frozen=True)
class LayerProfile:
    """Compute profile of one conv/linear layer."""

    name: str
    kind: str  # "conv" or "linear"
    macs: int  # total multiply-accumulates for one input
    ntot: int  # MACs per output activation (C_in * kh * kw or in_features)
    outputs: int  # output activations produced

    def vmacs(self, nmult: int) -> float:
        """VMAC conversions needed for one input at the given Nmult."""
        return self.outputs * np.ceil(self.ntot / nmult)


def profile_network(
    model: Module, input_shape: Sequence[int]
) -> List[LayerProfile]:
    """Measure per-layer MACs by running one dummy forward pass.

    Uses forward hooks on every :class:`Conv2d` and :class:`Linear`
    (including quantized subclasses), so any composition — plain,
    DoReFa, AMS-wrapped — profiles identically.
    """
    profiles: List[LayerProfile] = []
    handles = []

    def make_hook(name: str, module: Module):
        def hook(mod, inputs, output):
            if isinstance(mod, Conv2d):
                out = output.shape  # (N, C_out, H, W)
                per_image_outputs = int(np.prod(out[1:]))
                kh, kw = mod.kernel_size
                ntot = mod.in_channels * kh * kw
                kind = "conv"
            else:  # Linear
                per_image_outputs = int(np.prod(output.shape[1:]))
                ntot = mod.in_features
                kind = "linear"
            profiles.append(
                LayerProfile(
                    name=name,
                    kind=kind,
                    macs=per_image_outputs * ntot,
                    ntot=ntot,
                    outputs=per_image_outputs,
                )
            )

        return hook

    for name, module in model.named_modules():
        if isinstance(module, (Conv2d, Linear)):
            handles.append(module.register_forward_hook(make_hook(name, module)))
    try:
        was_training = model.training
        model.eval()
        with no_grad():
            model(Tensor(np.zeros(tuple(input_shape), dtype=np.float32)))
        model.train(was_training)
    finally:
        for handle in handles:
            handle.remove()
    if not profiles:
        raise ConfigError("model has no Conv2d/Linear layers to profile")
    return profiles


@dataclass(frozen=True)
class InferenceEnergyReport:
    """Energy breakdown of one inference on modeled AMS hardware."""

    total_macs: int
    total_conversions: float
    emac_pj: float
    total_energy_uj: float
    per_layer: Tuple[Tuple[str, int, float], ...]  # (name, macs, energy_uJ)

    def __str__(self) -> str:
        return (
            f"{self.total_macs/1e9:.2f} GMACs @ {self.emac_pj*1000:.0f} fJ/MAC"
            f" -> {self.total_energy_uj:.1f} uJ/inference"
        )


def inference_energy(
    profiles: Sequence[LayerProfile],
    vmac: VMACConfig,
    energy_model: Optional[EnergyModel] = None,
) -> InferenceEnergyReport:
    """Price one inference at a VMAC operating point.

    All layers are assumed mapped onto the same (ENOB, Nmult) hardware,
    as in the paper's uniform error injection.
    """
    energy_model = energy_model or EnergyModel()
    emac_pj = energy_model.emac(vmac.enob, vmac.nmult)
    per_layer = []
    total_macs = 0
    total_conversions = 0.0
    for profile in profiles:
        layer_energy_uj = profile.macs * emac_pj * 1e-6
        per_layer.append((profile.name, profile.macs, layer_energy_uj))
        total_macs += profile.macs
        total_conversions += profile.vmacs(vmac.nmult)
    return InferenceEnergyReport(
        total_macs=total_macs,
        total_conversions=total_conversions,
        emac_pj=emac_pj,
        total_energy_uj=total_macs * emac_pj * 1e-6,
        per_layer=tuple(per_layer),
    )
