"""ADC-dominated energy model and the energy-accuracy tradeoff.

Implements Eq. 3 (lower bound on ADC energy per conversion vs ENOB,
derived from Murmann's ADC survey) and Eq. 4 (energy per MAC with the
ADC amortized over ``Nmult`` multipliers), a synthetic survey dataset
standing in for the literature scatter of Fig. 7, and the Fig. 8
machinery that overlays accuracy-loss and energy level curves over the
``(ENOB, Nmult)`` design space.
"""

from repro.energy.adc import (
    ADCLibrary,
    adc_energy,
    adc_energy_array,
    schreier_fom,
    sndr_from_enob,
    enob_from_sndr,
    THERMAL_KNEE_ENOB,
    FLAT_ENERGY_PJ,
)
from repro.energy.emac import emac, emac_array, EnergyModel
from repro.energy.survey import SyntheticADCSurvey, SurveyPoint
from repro.energy.tradeoff import TradeoffGrid, AccuracyCurve
from repro.energy.network import (
    LayerProfile,
    InferenceEnergyReport,
    profile_network,
    inference_energy,
)

__all__ = [
    "ADCLibrary",
    "adc_energy",
    "adc_energy_array",
    "schreier_fom",
    "sndr_from_enob",
    "enob_from_sndr",
    "THERMAL_KNEE_ENOB",
    "FLAT_ENERGY_PJ",
    "emac",
    "emac_array",
    "EnergyModel",
    "SyntheticADCSurvey",
    "SurveyPoint",
    "TradeoffGrid",
    "AccuracyCurve",
    "LayerProfile",
    "InferenceEnergyReport",
    "profile_network",
    "inference_energy",
]
