"""Energy per MAC (paper Eq. 4) and extensions.

The paper's simple model assumes the VMAC energy is dominated by the
ADC, with the conversion cost amortized over the ``Nmult`` multipliers:

    E_MAC(ENOB, Nmult) = E_ADC(ENOB) / Nmult

Because this neglects multiplier and digital-accumulation energy it is a
*lower bound* on energy (and the accuracy model an upper bound on
accuracy).  :class:`EnergyModel` optionally adds a per-MAC multiplier
term so the ADC-dominated assumption itself can be ablated (DESIGN.md,
"Design choices called out for ablation").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.energy.adc import ADCLibrary, adc_energy, adc_energy_array
from repro.errors import ConfigError


def emac(enob: float, nmult: int) -> float:
    """Energy per MAC in pJ (Eq. 4): ``E_ADC(ENOB) / Nmult``."""
    if nmult < 1:
        raise ConfigError(f"Nmult must be >= 1, got {nmult}")
    return adc_energy(enob) / nmult


def emac_array(enob: np.ndarray, nmult: np.ndarray) -> np.ndarray:
    """Vectorized :func:`emac` with broadcasting."""
    nmult = np.asarray(nmult, dtype=np.float64)
    if np.any(nmult < 1):
        raise ConfigError("Nmult values must be >= 1")
    return adc_energy_array(enob) / nmult


@dataclass(frozen=True)
class EnergyModel:
    """E_MAC model with an optional non-ADC (multiplier) energy term.

    Attributes
    ----------
    multiplier_energy_pj:
        Fixed energy per D-to-A multiplication, in pJ.  Zero reproduces
        the paper's ADC-dominated bound exactly.
    library:
        The ADC energy bound amortized over the VMAC width.  The
        default :class:`~repro.energy.adc.ADCLibrary` is the paper's
        survey bound, so ``EnergyModel()`` is unchanged bit for bit;
        the explorer substitutes custom libraries (moved knee, scaled
        reference) from its spec.
    """

    multiplier_energy_pj: float = 0.0
    library: ADCLibrary = ADCLibrary()

    def __post_init__(self):
        if self.multiplier_energy_pj < 0:
            raise ConfigError("multiplier energy cannot be negative")

    def emac(self, enob: float, nmult: int) -> float:
        """Energy per MAC in pJ under this model."""
        if nmult < 1:
            raise ConfigError(f"Nmult must be >= 1, got {nmult}")
        return self.library.energy(enob) / nmult + self.multiplier_energy_pj

    def emac_array(self, enob: np.ndarray, nmult: np.ndarray) -> np.ndarray:
        nmult = np.asarray(nmult, dtype=np.float64)
        if np.any(nmult < 1):
            raise ConfigError("Nmult values must be >= 1")
        return (
            self.library.energy_array(enob) / nmult
            + self.multiplier_energy_pj
        )

    @property
    def is_adc_dominated(self) -> bool:
        return self.multiplier_energy_pj == 0.0
