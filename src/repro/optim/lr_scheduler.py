"""Learning-rate schedules.

The paper deliberately does *not* use LR scheduling ("Learning rate
scheduling is not implemented here"), so :class:`ConstantLR` is the
default throughout the experiment harness; Step and Cosine schedules are
provided for the pre-training phase of the synthetic baselines.
"""

from __future__ import annotations

import math

from repro.optim.optimizer import Optimizer


class _Scheduler:
    """Base: call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.get_lr()


class ConstantLR(_Scheduler):
    """Keep the LR fixed (the paper's retraining setting)."""

    def get_lr(self) -> float:
        return self.base_lr


class StepLR(_Scheduler):
    """Multiply LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineLR(_Scheduler):
    """Cosine annealing to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def get_lr(self) -> float:
        progress = min(self.epoch / max(self.total_epochs, 1), 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine
