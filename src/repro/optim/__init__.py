"""Optimizers and learning-rate schedulers."""

from repro.optim.sgd import SGD
from repro.optim.adam import Adam
from repro.optim.lr_scheduler import StepLR, CosineLR, ConstantLR

__all__ = ["SGD", "Adam", "StepLR", "CosineLR", "ConstantLR"]
