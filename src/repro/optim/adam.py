"""Adam optimizer."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.parameter import Parameter
from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [None] * len(self.params)
        self._v = [None] * len(self.params)
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for i, p in enumerate(self.params):
            if not p.requires_grad or p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self._m[i] is None:
                self._m[i] = np.zeros_like(p.data)
                self._v[i] = np.zeros_like(p.data)
            m, v = self._m[i], self._v[i]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
