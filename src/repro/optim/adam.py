"""Adam optimizer.

The update runs fully in place on ``p.data`` with pooled scratch
buffers (see :mod:`repro.tensor.pool`), preserving the exact operand
order — and therefore rounding — of the textbook allocating form.
``p.grad`` is never mutated.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from repro.errors import ConfigError
from repro.nn.parameter import Parameter
from repro.optim.optimizer import Optimizer
from repro.tensor.pool import default_pool
from repro.utils import profiler as _profiler


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [None] * len(self.params)
        self._v = [None] * len(self.params)
        self._t = 0

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Moments as ``m.<i>`` / ``v.<i>`` plus the 0-d step count ``t``.

        The step count drives bias correction, so omitting it would
        silently change every post-resume update.
        """
        state: Dict[str, np.ndarray] = {"t": np.array(self._t, dtype=np.int64)}
        for i, m in enumerate(self._m):
            if m is not None:
                state[f"m.{i}"] = m.copy()
                state[f"v.{i}"] = self._v[i].copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        if "t" not in state:
            raise ConfigError("Adam state is missing the step counter 't'")
        m = [None] * len(self.params)
        v = [None] * len(self.params)
        for key, value in state.items():
            if key == "t":
                continue
            slot = key.split(".", 1)[0]
            if slot not in ("m", "v"):
                raise ConfigError(f"unknown Adam state key {key!r}")
            i = self._slot_index(key, slot)
            if value.shape != self.params[i].data.shape:
                raise ConfigError(
                    f"{key} shape {value.shape} does not match parameter "
                    f"shape {self.params[i].data.shape}"
                )
            (m if slot == "m" else v)[i] = np.array(value, copy=True)
        for i in range(len(self.params)):
            if (m[i] is None) != (v[i] is None):
                raise ConfigError(
                    f"Adam state for parameter {i} has only one of m/v"
                )
        self._m, self._v = m, v
        self._t = int(state["t"])

    def step(self) -> None:
        token = _profiler.op_start()
        pool = default_pool()
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for i, p in enumerate(self.params):
            if not p.requires_grad or p.grad is None:
                continue
            grad = p.grad
            s1 = pool.get(p.data.shape, p.data.dtype)
            s2 = pool.get(p.data.shape, p.data.dtype)
            if self.weight_decay:
                # grad + wd * p  (commuted, bitwise identical)
                wd = pool.get(p.data.shape, p.data.dtype)
                np.multiply(p.data, self.weight_decay, out=wd)
                wd += grad
                grad = wd
            if self._m[i] is None:
                self._m[i] = np.zeros_like(p.data)
                self._v[i] = np.zeros_like(p.data)
            m, v = self._m[i], self._v[i]
            m *= self.beta1
            # m += (1 - beta1) * grad
            np.multiply(grad, 1.0 - self.beta1, out=s1)
            m += s1
            v *= self.beta2
            # v += ((1 - beta2) * grad) * grad
            np.multiply(grad, 1.0 - self.beta2, out=s2)
            s2 *= grad
            v += s2
            np.divide(m, bias1, out=s1)  # m_hat
            np.divide(v, bias2, out=s2)  # v_hat
            np.sqrt(s2, out=s2)
            s2 += self.eps
            # p -= (lr * m_hat) / (sqrt(v_hat) + eps)
            s1 *= self.lr
            s1 /= s2
            p.data -= s1
            p.version = getattr(p, "version", 0) + 1
            if self.weight_decay:
                pool.release(grad)
            pool.release(s1)
            pool.release(s2)
        _profiler.op_end(token, "optim.step")
