"""Optimizer base class."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.errors import ConfigError
from repro.nn.parameter import Parameter


class Optimizer:
    """Holds a parameter list and updates it from accumulated gradients.

    Parameters with ``requires_grad=False`` (frozen, as in the paper's
    Table 2 experiments) are skipped even if they somehow carry a
    gradient, so freezing is effective regardless of graph wiring.
    """

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ConfigError("optimizer received no parameters")
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # checkpointing (see repro.ckpt)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat array mapping of the optimizer's slot state.

        Stateless optimizers return ``{}``.  Keys are
        ``<slot>.<param_index>`` (parameter order is the construction
        order, which every caller derives deterministically from the
        model), plus 0-d arrays for scalar counters.  Values are
        copies, so later steps never mutate a snapshot.
        """
        return {}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore a snapshot from :meth:`state_dict` (exact arrays)."""
        if state:
            raise ConfigError(
                f"{type(self).__name__} holds no slot state but got keys "
                f"{sorted(state)}"
            )

    def _slot_index(self, key: str, slot: str) -> int:
        """Parse and bounds-check the param index of ``<slot>.<i>``."""
        suffix = key[len(slot) + 1 :]
        if not suffix.isdigit() or int(suffix) >= len(self.params):
            raise ConfigError(
                f"optimizer state key {key!r} does not name one of "
                f"{len(self.params)} parameters"
            )
        return int(suffix)
