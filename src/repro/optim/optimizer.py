"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable, List

from repro.errors import ConfigError
from repro.nn.parameter import Parameter


class Optimizer:
    """Holds a parameter list and updates it from accumulated gradients.

    Parameters with ``requires_grad=False`` (frozen, as in the paper's
    Table 2 experiments) are skipped even if they somehow carry a
    gradient, so freezing is effective regardless of graph wiring.
    """

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ConfigError("optimizer received no parameters")
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError
