"""Stochastic gradient descent with momentum and weight decay.

The paper retrains with plain SGD (minibatch 1024, lr 0.004, Distiller's
defaults otherwise); this mirrors ``torch.optim.SGD`` semantics.

The update is applied *in place* on ``p.data`` using pooled scratch
buffers, so a training step allocates nothing at steady state.  The
arithmetic (operand order and rounding) is unchanged from the
allocating version, and ``p.grad`` is never mutated.  In-place mutation
of ``p.data`` is safe because ``state_dict()`` snapshots copies.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from repro.errors import ConfigError
from repro.nn.parameter import Parameter
from repro.optim.optimizer import Optimizer
from repro.tensor.pool import default_pool
from repro.utils import profiler as _profiler


class SGD(Optimizer):
    """SGD with optional momentum, Nesterov momentum and L2 weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [None] * len(self.params)

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Momentum buffers as ``velocity.<i>`` (lazy slots omitted)."""
        return {
            f"velocity.{i}": v.copy()
            for i, v in enumerate(self._velocity)
            if v is not None
        }

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        velocity = [None] * len(self.params)
        for key, value in state.items():
            if not key.startswith("velocity."):
                raise ConfigError(f"unknown SGD state key {key!r}")
            i = self._slot_index(key, "velocity")
            if value.shape != self.params[i].data.shape:
                raise ConfigError(
                    f"velocity.{i} shape {value.shape} does not match "
                    f"parameter shape {self.params[i].data.shape}"
                )
            velocity[i] = np.array(value, copy=True)
        self._velocity = velocity

    def step(self) -> None:
        token = _profiler.op_start()
        pool = default_pool()
        for i, p in enumerate(self.params):
            if not p.requires_grad or p.grad is None:
                continue
            grad = p.grad
            scratch = pool.get(p.data.shape, p.data.dtype)
            if self.weight_decay:
                # grad + wd * p  (commuted, bitwise identical)
                np.multiply(p.data, self.weight_decay, out=scratch)
                scratch += grad
                grad = scratch
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                v = self._velocity[i]
                v *= self.momentum
                v += grad
                if self.nesterov:
                    # grad + momentum * v  (commuted)
                    if grad is scratch:
                        nest = pool.get(p.data.shape, p.data.dtype)
                        np.multiply(v, self.momentum, out=nest)
                        nest += grad
                        np.copyto(scratch, nest)
                        pool.release(nest)
                    else:
                        np.multiply(v, self.momentum, out=scratch)
                        scratch += grad
                    grad = scratch
                else:
                    grad = v
            # p -= lr * grad
            if grad is not scratch:
                np.multiply(grad, self.lr, out=scratch)
            else:
                scratch *= self.lr
            p.data -= scratch
            p.version = getattr(p, "version", 0) + 1
            pool.release(scratch)
        _profiler.op_end(token, "optim.step")
