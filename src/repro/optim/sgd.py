"""Stochastic gradient descent with momentum and weight decay.

The paper retrains with plain SGD (minibatch 1024, lr 0.004, Distiller's
defaults otherwise); this mirrors ``torch.optim.SGD`` semantics.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.parameter import Parameter
from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    """SGD with optional momentum, Nesterov momentum and L2 weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [None] * len(self.params)

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if not p.requires_grad or p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                v = self._velocity[i]
                v *= self.momentum
                v += grad
                grad = grad + self.momentum * v if self.nesterov else v
            p.data = p.data - self.lr * grad
